package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"fairsqg/internal/graph"
)

// snapExt is the on-disk extension for binary graph snapshots; partially
// written files carry snapTmpExt until the final rename and are ignored
// (and cleaned up) by restore. walExt marks a graph's mutation delta log
// (see graph.OpenWAL); checkpointed base snapshots carry an epoch-
// qualified stem, "name@<epoch>.fsnap", which can never collide with a
// registry name ('@' fails graphNameRe).
const (
	snapExt    = ".fsnap"
	snapTmpExt = ".fsnap.tmp"
	walExt     = ".fdelta"
	walTmpExt  = ".fdelta.tmp"
)

// snapshotStore persists registered graphs as binary frozen-layout
// snapshots (graph.WriteSnapshot) in a flat directory, one file per graph
// name, and restores them into the registry on startup so a daemon
// restart does not re-parse or re-Freeze anything. Writes are atomic:
// temp file in the same directory, then rename. All operations are
// best-effort — a disk error never fails graph registration, it only
// shows up in the counters and the log.
type snapshotStore struct {
	dir    string
	logger printfLogger
	// mmap switches load from decode-to-heap to graph.OpenSnapshotMapped:
	// graphs are served straight from the page cache, restore cost is
	// O(open) instead of O(graph), and resident memory stays bounded by
	// what queries actually touch. Version 1 files, which have no mapped
	// layout, silently fall back to the heap decoder (counted).
	mmap bool

	loads          atomic.Int64 // snapshots decoded successfully
	writes         atomic.Int64 // snapshots persisted successfully
	writeFails     atomic.Int64 // persist attempts that errored
	fallbacks      atomic.Int64 // corrupt/unreadable snapshots skipped on restore
	tmpCleaned     atomic.Int64 // partial .tmp files removed on restore
	orphansCleaned atomic.Int64 // stale checkpoint/log files removed on restore
	loadNanos      atomic.Int64 // cumulative decode wall time
	mmapLoads      atomic.Int64 // snapshots opened memory-mapped
	mappedBytes    atomic.Int64 // bytes currently memory-mapped via this store
	v1Fallbacks    atomic.Int64 // v1 snapshots decoded to heap in mmap mode

	wal walCounters
}

// walCounters aggregates the delta-log counters for the /metrics
// storage.wal section. The registry bumps the append pair on the mutate
// path; the rest belong to restore and checkpointing.
type walCounters struct {
	appends       atomic.Int64 // batches fsync'd to a delta log
	appendFails   atomic.Int64 // append or log-open failures (batch not persisted)
	resets        atomic.Int64 // checkpoint log rotations
	resetFails    atomic.Int64 // failed rotations (checkpoint aborted)
	replays       atomic.Int64 // logs replayed on restore
	replayBatches atomic.Int64 // batches applied from logs on restore
	replayRejects atomic.Int64 // replayed batches the graph refused (replay stops there)
	truncations   atomic.Int64 // torn tails truncated by restore's repair
	unusable      atomic.Int64 // logs with an unreadable header, dropped on restore
}

func (c *walCounters) counters() map[string]any {
	return map[string]any{
		"appends":       c.appends.Load(),
		"appendFails":   c.appendFails.Load(),
		"resets":        c.resets.Load(),
		"resetFails":    c.resetFails.Load(),
		"replays":       c.replays.Load(),
		"replayBatches": c.replayBatches.Load(),
		"replayRejects": c.replayRejects.Load(),
		"truncations":   c.truncations.Load(),
		"unusable":      c.unusable.Load(),
	}
}

// newSnapshotStore creates dir if needed and returns a store over it.
func newSnapshotStore(dir string, mmap bool, logger printfLogger) (*snapshotStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: snapshot dir: %w", err)
	}
	return &snapshotStore{dir: dir, mmap: mmap, logger: logger}, nil
}

// path maps a registry name to its snapshot file. Names already match
// graphNameRe ([A-Za-z0-9._-]{1,64}) and gain an extension, so the result
// is always a plain file inside dir.
func (st *snapshotStore) path(name string) string {
	return filepath.Join(st.dir, name+snapExt)
}

// epochPath maps (name, epoch) to the base-snapshot file the graph's
// delta log extends: the plain path for epoch 0 (the original upload),
// an '@'-qualified one for checkpoints.
func (st *snapshotStore) epochPath(name string, epoch uint64) string {
	if epoch == 0 {
		return st.path(name)
	}
	return filepath.Join(st.dir, fmt.Sprintf("%s@%d%s", name, epoch, snapExt))
}

// walPath maps a registry name to its mutation delta log.
func (st *snapshotStore) walPath(name string) string {
	return filepath.Join(st.dir, name+walExt)
}

func (st *snapshotStore) logf(format string, args ...any) {
	if st.logger != nil {
		st.logger.Printf(format, args...)
	}
}

// save writes g's snapshot atomically under name, reporting success.
// Errors are counted and logged, not returned: persistence is an
// optimization, never a reason to reject a registration.
func (st *snapshotStore) save(name string, g *graph.Graph) bool {
	return st.saveTo(name, st.path(name), g)
}

// saveEpoch writes g as the epoch-qualified base snapshot for name — the
// first half of a checkpoint, before the delta-log rotation commits it.
func (st *snapshotStore) saveEpoch(name string, epoch uint64, g *graph.Graph) bool {
	return st.saveTo(name, st.epochPath(name, epoch), g)
}

func (st *snapshotStore) saveTo(name, path string, g *graph.Graph) bool {
	tmp := path + ".tmp" // ends in snapTmpExt
	err := func() error {
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := graph.WriteSnapshot(f, g); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}()
	if err != nil {
		st.writeFails.Add(1)
		os.Remove(tmp)
		st.logf("snapshot save %s: %v", name, err)
		return false
	}
	st.writes.Add(1)
	return true
}

// load materializes the epoch-0 snapshot for name; loadFrom picks the
// base file for any epoch. In mmap mode the graph is opened mapped; a
// version 1 file — which has no mapped layout — falls back to the heap
// decoder and bumps v1Fallbacks.
func (st *snapshotStore) load(name string) (*graph.Graph, error) {
	return st.loadFrom(name, 0)
}

func (st *snapshotStore) loadFrom(name string, epoch uint64) (*graph.Graph, error) {
	start := time.Now()
	path := st.epochPath(name, epoch)
	var g *graph.Graph
	var err error
	if st.mmap {
		g, err = graph.OpenSnapshotMapped(path)
		if errors.Is(err, graph.ErrSnapshotVersion) {
			st.v1Fallbacks.Add(1)
			st.logf("snapshot %s: version 1 file, decoding to heap (re-save to enable mapping)", name)
			g, err = graph.ReadSnapshotFile(path)
		}
	} else {
		g, err = graph.ReadSnapshotFile(path)
	}
	if err != nil {
		return nil, err
	}
	if g.Mapped() {
		st.mmapLoads.Add(1)
		st.mappedBytes.Add(g.MappedBytes())
	}
	st.loads.Add(1)
	st.loadNanos.Add(int64(time.Since(start)))
	return g, nil
}

// unmapped records that a mapped graph produced by load released its last
// reference (the registry calls it from entry teardown).
func (st *snapshotStore) unmapped(g *graph.Graph) {
	if g.Mapped() {
		st.mappedBytes.Add(-g.MappedBytes())
	}
}

// remove deletes name's snapshot file (no-op if absent).
func (st *snapshotStore) remove(name string) {
	if err := os.Remove(st.path(name)); err != nil && !os.IsNotExist(err) {
		st.logf("snapshot remove %s: %v", name, err)
	}
}

// removeEpochFile deletes one epoch-qualified base snapshot; epoch 0 (the
// plain snapshot) is handled too, so checkpointing off the original
// upload retires it.
func (st *snapshotStore) removeEpochFile(name string, epoch uint64) {
	if err := os.Remove(st.epochPath(name, epoch)); err != nil && !os.IsNotExist(err) {
		st.logf("snapshot remove %s@%d: %v", name, epoch, err)
	}
}

// clearDerived deletes every file derived from name's mutation history —
// the delta log, its rotation temp, and all epoch-qualified checkpoints —
// leaving any plain snapshot alone. Put calls it so a fresh registration
// can never have a stale log replayed over it; Remove calls it after
// deleting the plain snapshot so nothing of the name survives.
func (st *snapshotStore) clearDerived(name string) {
	for _, p := range []string{st.walPath(name), st.walPath(name) + ".tmp"} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			st.logf("remove %s: %v", p, err)
		}
	}
	matches, err := filepath.Glob(filepath.Join(st.dir, name+"@*"+snapExt))
	if err != nil {
		return
	}
	for _, p := range matches {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			st.logf("remove %s: %v", p, err)
		}
	}
}

// restoreFiles is what the directory scan found for one registry name.
type restoreFiles struct {
	plain  bool            // name.fsnap (epoch 0)
	epochs map[uint64]bool // name@<k>.fsnap checkpoints
	wal    bool            // name.fdelta
}

// restore scans the directory and rebuilds the registry: partial .tmp
// files are deleted, and for every name the delta log (recovered with
// torn tails truncated) names the base snapshot epoch its batches extend;
// that snapshot is loaded and the batches are replayed over it, so the
// graph comes back at its exact pre-crash state — including in mapped
// mode, where the base is served from the page cache and the replayed
// generations sit on top copy-on-write. Snapshot files the log does not
// name (a checkpoint that lost the race with a crash) and logs without a
// base are orphans: deleted and counted. A snapshot that fails to decode
// (bit rot, version skew) is skipped and counted — the caller falls back
// to the original source format, and the next successful registration
// overwrites the bad file. Returns the names restored, sorted.
func (st *snapshotStore) restore(reg *Registry) []string {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		st.logf("snapshot restore: %v", err)
		return nil
	}
	byName := map[string]*restoreFiles{}
	get := func(name string) *restoreFiles {
		f := byName[name]
		if f == nil {
			f = &restoreFiles{epochs: map[uint64]bool{}}
			byName[name] = f
		}
		return f
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		fn := e.Name()
		switch {
		case strings.HasSuffix(fn, snapTmpExt), strings.HasSuffix(fn, walTmpExt):
			if err := os.Remove(filepath.Join(st.dir, fn)); err == nil {
				st.tmpCleaned.Add(1)
				st.logf("snapshot restore: removed partial %s", fn)
			}
		case strings.HasSuffix(fn, walExt):
			if name := strings.TrimSuffix(fn, walExt); graphNameRe.MatchString(name) {
				get(name).wal = true
			}
		case strings.HasSuffix(fn, snapExt):
			stem := strings.TrimSuffix(fn, snapExt)
			if i := strings.IndexByte(stem, '@'); i >= 0 {
				name, es := stem[:i], stem[i+1:]
				epoch, err := strconv.ParseUint(es, 10, 64)
				if err == nil && epoch > 0 && graphNameRe.MatchString(name) {
					get(name).epochs[epoch] = true
				}
			} else if graphNameRe.MatchString(stem) {
				get(stem).plain = true
			}
		}
	}

	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)

	var restored []string
	for _, name := range names {
		if st.restoreOne(reg, name, byName[name]) {
			restored = append(restored, name)
		}
	}
	return restored
}

// restoreOne rebuilds one name from its files, reporting success.
func (st *snapshotStore) restoreOne(reg *Registry, name string, f *restoreFiles) bool {
	var rep *graph.WALReplay
	if f.wal {
		var err error
		rep, err = graph.ReplayWAL(st.walPath(name), true)
		if err != nil {
			// Unreadable header: the log never held a recoverable batch
			// (appends only follow a complete header). Drop it so the next
			// mutation starts a clean one.
			st.wal.unusable.Add(1)
			st.logf("delta log %s: %v (removed; restoring from snapshot alone)", name, err)
			os.Remove(st.walPath(name))
			rep = nil
		} else {
			st.wal.replays.Add(1)
			if rep.Truncated {
				st.wal.truncations.Add(1)
				st.logf("delta log %s: torn tail, dropped %d bytes", name, rep.TruncatedBytes)
			}
		}
	}
	baseEpoch := uint64(0)
	if rep != nil {
		baseEpoch = rep.Epoch
	} else if !f.plain && len(f.epochs) > 0 {
		// No usable log but checkpoints exist and the plain snapshot is
		// gone: the highest checkpoint is the newest complete image.
		for e := range f.epochs {
			if e > baseEpoch {
				baseEpoch = e
			}
		}
	}
	haveBase := f.plain
	if baseEpoch > 0 {
		haveBase = f.epochs[baseEpoch]
	}
	// Sweep orphans: every snapshot that is not the base, and (when the
	// base itself is missing) the log too — nothing can extend it.
	if f.plain && baseEpoch != 0 {
		st.removeEpochFile(name, 0)
		st.orphansCleaned.Add(1)
	}
	for e := range f.epochs {
		if e != baseEpoch || !haveBase {
			st.removeEpochFile(name, e)
			st.orphansCleaned.Add(1)
		}
	}
	if !haveBase {
		if f.wal {
			os.Remove(st.walPath(name))
			st.orphansCleaned.Add(1)
		}
		if baseEpoch != 0 || f.plain {
			st.fallbacks.Add(1)
			st.logf("snapshot restore %s: base epoch %d missing (will fall back to source format)", name, baseEpoch)
		}
		return false
	}

	g, err := st.loadFrom(name, baseEpoch)
	if err != nil {
		st.fallbacks.Add(1)
		st.logf("snapshot restore %s: %v (will fall back to source format)", name, err)
		return false
	}
	l := graph.NewLive(g)
	replayed := 0
	if rep != nil {
		for i, b := range rep.Batches {
			if _, err := l.Apply(b); err != nil {
				st.wal.replayRejects.Add(1)
				st.logf("delta log %s: batch %d refused: %v (stopping at last good state)", name, i, err)
				break
			}
			replayed++
			st.wal.replayBatches.Add(1)
		}
	}
	if err := reg.putRestoredLive(name, l, baseEpoch, replayed); err != nil {
		st.logf("snapshot restore %s: %v", name, err)
		return false
	}
	return true
}

// counters renders the store's state for the /metrics "storage" section.
func (st *snapshotStore) counters() map[string]any {
	return map[string]any{
		"loads":          st.loads.Load(),
		"writes":         st.writes.Load(),
		"writeFails":     st.writeFails.Load(),
		"fallbacks":      st.fallbacks.Load(),
		"tmpCleaned":     st.tmpCleaned.Load(),
		"orphansCleaned": st.orphansCleaned.Load(),
		"loadMs":         float64(st.loadNanos.Load()) / 1e6,
		"mmapLoads":      st.mmapLoads.Load(),
		"mappedBytes":    st.mappedBytes.Load(),
		"v1Fallbacks":    st.v1Fallbacks.Load(),
	}
}
