package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"fairsqg/internal/graph"
)

// snapExt is the on-disk extension for binary graph snapshots; partially
// written files carry snapTmpExt until the final rename and are ignored
// (and cleaned up) by restore.
const (
	snapExt    = ".fsnap"
	snapTmpExt = ".fsnap.tmp"
)

// snapshotStore persists registered graphs as binary frozen-layout
// snapshots (graph.WriteSnapshot) in a flat directory, one file per graph
// name, and restores them into the registry on startup so a daemon
// restart does not re-parse or re-Freeze anything. Writes are atomic:
// temp file in the same directory, then rename. All operations are
// best-effort — a disk error never fails graph registration, it only
// shows up in the counters and the log.
type snapshotStore struct {
	dir    string
	logger printfLogger

	loads      atomic.Int64 // snapshots decoded successfully
	writes     atomic.Int64 // snapshots persisted successfully
	writeFails atomic.Int64 // persist attempts that errored
	fallbacks  atomic.Int64 // corrupt/unreadable snapshots skipped on restore
	tmpCleaned atomic.Int64 // partial .tmp files removed on restore
	loadNanos  atomic.Int64 // cumulative decode wall time
}

// newSnapshotStore creates dir if needed and returns a store over it.
func newSnapshotStore(dir string, logger printfLogger) (*snapshotStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: snapshot dir: %w", err)
	}
	return &snapshotStore{dir: dir, logger: logger}, nil
}

// path maps a registry name to its snapshot file. Names already match
// graphNameRe ([A-Za-z0-9._-]{1,64}) and gain an extension, so the result
// is always a plain file inside dir.
func (st *snapshotStore) path(name string) string {
	return filepath.Join(st.dir, name+snapExt)
}

func (st *snapshotStore) logf(format string, args ...any) {
	if st.logger != nil {
		st.logger.Printf(format, args...)
	}
}

// save writes g's snapshot atomically under name. Errors are counted and
// logged, not returned: persistence is an optimization, never a reason to
// reject a registration.
func (st *snapshotStore) save(name string, g *graph.Graph) {
	tmp := st.path(name) + ".tmp" // ends in snapTmpExt
	err := func() error {
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := graph.WriteSnapshot(f, g); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, st.path(name))
	}()
	if err != nil {
		st.writeFails.Add(1)
		os.Remove(tmp)
		st.logf("snapshot save %s: %v", name, err)
		return
	}
	st.writes.Add(1)
}

// load decodes the snapshot for name, recording the wall time.
func (st *snapshotStore) load(name string) (*graph.Graph, error) {
	f, err := os.Open(st.path(name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	start := time.Now()
	g, err := graph.ReadSnapshot(f)
	if err != nil {
		return nil, err
	}
	st.loads.Add(1)
	st.loadNanos.Add(int64(time.Since(start)))
	return g, nil
}

// remove deletes name's snapshot file (no-op if absent).
func (st *snapshotStore) remove(name string) {
	if err := os.Remove(st.path(name)); err != nil && !os.IsNotExist(err) {
		st.logf("snapshot remove %s: %v", name, err)
	}
}

// restore scans the directory: partial .tmp files are deleted, every
// *.fsnap file is decoded and registered. A snapshot that fails to decode
// (truncated by a crash, bit rot, version skew) is skipped and counted —
// the caller falls back to the original source format, and the next
// successful registration overwrites the bad file. Returns the names
// restored, sorted.
func (st *snapshotStore) restore(reg *Registry) []string {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		st.logf("snapshot restore: %v", err)
		return nil
	}
	var restored []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		fn := e.Name()
		if strings.HasSuffix(fn, snapTmpExt) {
			if err := os.Remove(filepath.Join(st.dir, fn)); err == nil {
				st.tmpCleaned.Add(1)
				st.logf("snapshot restore: removed partial %s", fn)
			}
			continue
		}
		if !strings.HasSuffix(fn, snapExt) {
			continue
		}
		name := strings.TrimSuffix(fn, snapExt)
		if !graphNameRe.MatchString(name) {
			continue
		}
		g, err := st.load(name)
		if err != nil {
			st.fallbacks.Add(1)
			st.logf("snapshot restore %s: %v (will fall back to source format)", name, err)
			continue
		}
		if err := reg.putRestored(name, g); err != nil {
			st.logf("snapshot restore %s: %v", name, err)
			continue
		}
		restored = append(restored, name)
	}
	sort.Strings(restored)
	return restored
}

// counters renders the store's state for the /metrics "storage" section.
func (st *snapshotStore) counters() map[string]any {
	return map[string]any{
		"loads":      st.loads.Load(),
		"writes":     st.writes.Load(),
		"writeFails": st.writeFails.Load(),
		"fallbacks":  st.fallbacks.Load(),
		"tmpCleaned": st.tmpCleaned.Load(),
		"loadMs":     float64(st.loadNanos.Load()) / 1e6,
	}
}
