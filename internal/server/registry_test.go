package server

import (
	"bytes"
	"strings"
	"testing"

	"fairsqg/internal/graph"
)

// tinyGraph builds a minimal frozen graph for registry tests.
func tinyGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	a := g.AddNode("Person", map[string]graph.Value{"gender": graph.Str("female")})
	b := g.AddNode("Person", map[string]graph.Value{"gender": graph.Str("male")})
	if err := g.AddEdge(a, b, "knows"); err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	return g
}

func TestRegistryPutAcquireRemove(t *testing.T) {
	r := NewRegistry(1, 0)
	g := tinyGraph(t)
	if err := r.Put("tiny", g); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("tiny", g); err == nil {
		t.Fatal("duplicate Put should fail")
	}
	if err := r.Put("bad name!", g); err == nil {
		t.Fatal("invalid name should fail")
	}
	if err := r.Put("unfrozen", graph.New()); err == nil {
		t.Fatal("unfrozen graph should fail")
	}

	h, err := r.Acquire("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if info, _ := r.Info("tiny"); info.Refs != 1 {
		t.Fatalf("refs = %d, want 1", info.Refs)
	}
	// Removal doesn't invalidate the outstanding handle.
	if err := r.Remove("tiny"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Acquire("tiny"); err == nil {
		t.Fatal("acquire after remove should fail")
	}
	if h.Graph() != g || h.Engine() == nil || h.Name() != "tiny" {
		t.Fatal("handle invalidated by Remove")
	}
	h.Release()
	h.Release() // idempotent
}

func TestRegistryReadFormats(t *testing.T) {
	g := tinyGraph(t)
	var tsv, js bytes.Buffer
	if err := graph.WriteTSV(&tsv, g); err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteJSON(&js, g); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry(1, 0)
	if err := r.Read("t1", "tsv", bytes.NewReader(tsv.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := r.Read("t2", "json", bytes.NewReader(js.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := r.Read("t3", "xml", strings.NewReader("")); err == nil {
		t.Fatal("unknown format should fail")
	}
	if err := r.Read("t4", "tsv", strings.NewReader("not\ta\tgraph\nat all")); err == nil {
		t.Fatal("malformed TSV should fail")
	}
	infos := r.List()
	if len(infos) != 2 || infos[0].Name != "t1" || infos[1].Name != "t2" {
		t.Fatalf("List = %+v, want t1,t2", infos)
	}
	for _, info := range infos {
		if info.Nodes != 2 || info.Edges != 1 {
			t.Fatalf("%s: %d nodes %d edges, want 2/1", info.Name, info.Nodes, info.Edges)
		}
	}
}
