package server

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"fairsqg/internal/graph"
)

func storageSnapshots(t *testing.T, url string) map[string]any {
	t.Helper()
	var met struct {
		Storage struct {
			Snapshots map[string]any `json:"snapshots"`
		} `json:"storage"`
	}
	doJSON(t, http.MethodGet, url+"/metrics", nil, http.StatusOK, &met)
	if met.Storage.Snapshots == nil {
		t.Fatal("/metrics storage.snapshots missing")
	}
	return met.Storage.Snapshots
}

// TestServerMappedWarmRestart is the -mmap-graphs e2e: an uploaded graph
// is persisted and immediately re-served from its memory-mapped snapshot,
// a restart restores it mapped, job results stay byte-identical across
// generations, and the storage metrics expose the mapped state.
func TestServerMappedWarmRestart(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 7)

	// Generation 1: upload. In mapped mode the registered graph is the
	// mapped reopen of the snapshot just saved, not the uploaded heap copy.
	s1, ts1 := startServer(t, Options{SnapshotDir: dir, MmapGraphs: true})
	uploadGraph(t, ts1.URL, "talent", g)

	h, err := s1.Registry().Acquire("talent")
	if err != nil {
		t.Fatal(err)
	}
	if !h.Graph().Mapped() {
		t.Fatal("uploaded graph is not served mapped (expected on a unix host)")
	}
	h.Release()

	st := submitJob(t, ts1.URL, testSpec("talent"))
	done := pollDone(t, ts1.URL, st.ID)
	if done.State != JobDone {
		t.Fatalf("gen-1 job state = %s: %s", done.State, done.Error)
	}
	var want JobResult
	doJSON(t, http.MethodGet, ts1.URL+"/v1/jobs/"+st.ID+"/result", nil, http.StatusOK, &want)

	snaps := storageSnapshots(t, ts1.URL)
	if got, _ := snaps["mmapLoads"].(float64); got < 1 {
		t.Errorf("gen-1 storage.snapshots.mmapLoads = %v, want >= 1", snaps["mmapLoads"])
	}
	if got, _ := snaps["mappedBytes"].(float64); got <= 0 {
		t.Errorf("gen-1 storage.snapshots.mappedBytes = %v, want > 0", snaps["mappedBytes"])
	}
	shutdown(t, s1, ts1)

	// Generation 2: restore from the same directory, mapped.
	s2, ts2 := startServer(t, Options{SnapshotDir: dir, MmapGraphs: true})
	if got := s2.RestoredGraphs(); !reflect.DeepEqual(got, []string{"talent"}) {
		t.Fatalf("RestoredGraphs = %v, want [talent]", got)
	}
	h2, err := s2.Registry().Acquire("talent")
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Graph().Mapped() {
		t.Fatal("restored graph is not served mapped")
	}
	h2.Release()

	st2 := submitJob(t, ts2.URL, testSpec("talent"))
	done2 := pollDone(t, ts2.URL, st2.ID)
	if done2.State != JobDone {
		t.Fatalf("gen-2 job state = %s: %s", done2.State, done2.Error)
	}
	var got JobResult
	doJSON(t, http.MethodGet, ts2.URL+"/v1/jobs/"+st2.ID+"/result", nil, http.StatusOK, &got)
	got.ElapsedMs, want.ElapsedMs = 0, 0
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mapped restore changed job results:\n got %+v\nwant %+v", got, want)
	}
	shutdown(t, s2, ts2)

	// Shutdown tore the registry down; the gauge must be back to zero.
	if n := s2.snaps.mappedBytes.Load(); n != 0 {
		t.Errorf("mappedBytes gauge = %d after shutdown, want 0", n)
	}
}

// TestServerMappedV1Fallback: a version 1 snapshot in the directory has no
// mapped layout; in mapped mode it must still restore — decoded to the
// heap — and be counted in v1Fallbacks, per the versioning policy.
func TestServerMappedV1Fallback(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 5)
	var buf bytes.Buffer
	if err := graph.WriteSnapshotV1(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "legacy"+snapExt), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts := startServer(t, Options{SnapshotDir: dir, MmapGraphs: true})
	defer shutdown(t, s, ts)
	if got := s.RestoredGraphs(); !reflect.DeepEqual(got, []string{"legacy"}) {
		t.Fatalf("RestoredGraphs = %v, want [legacy]", got)
	}
	h, err := s.Registry().Acquire("legacy")
	if err != nil {
		t.Fatal(err)
	}
	if h.Graph().Mapped() {
		t.Fatal("v1 snapshot claims to be mapped")
	}
	if h.Graph().NumNodes() != g.NumNodes() {
		t.Fatalf("v1 fallback restored %d nodes, want %d", h.Graph().NumNodes(), g.NumNodes())
	}
	h.Release()

	snaps := storageSnapshots(t, ts.URL)
	if got, _ := snaps["v1Fallbacks"].(float64); got != 1 {
		t.Errorf("storage.snapshots.v1Fallbacks = %v, want 1", snaps["v1Fallbacks"])
	}
	if got, _ := snaps["mmapLoads"].(float64); got != 0 {
		t.Errorf("storage.snapshots.mmapLoads = %v, want 0", snaps["mmapLoads"])
	}
}

// TestMappedUseAfterRemove: a handle acquired before Remove must keep the
// mapping alive — reads through it stay valid while and after the graph is
// unregistered concurrently, and the region is released only on the last
// Release. Run under -race in CI.
func TestMappedUseAfterRemove(t *testing.T) {
	dir := t.TempDir()
	st, err := newSnapshotStore(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(2, 0)
	reg.snaps = st
	g := testGraph(t, 9)
	if err := reg.Put("g", g); err != nil {
		t.Fatal(err)
	}
	h, err := reg.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	if !h.Graph().Mapped() {
		t.Skip("graph not mapped on this platform")
	}
	want := graph.Summarize(h.Graph())

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if got := graph.Summarize(h.Graph()); !reflect.DeepEqual(got, want) {
				t.Error("mapped reads changed during concurrent Remove")
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		if err := reg.Remove("g"); err != nil {
			t.Errorf("Remove: %v", err)
		}
	}()
	wg.Wait()

	// The registry dropped its reference; the handle still pins the map.
	if got := graph.Summarize(h.Graph()); !reflect.DeepEqual(got, want) {
		t.Fatal("mapped reads invalid after Remove with a live handle")
	}
	h.Release()
	if n := st.mappedBytes.Load(); n != 0 {
		t.Fatalf("mappedBytes gauge = %d after last release, want 0", n)
	}
	// Handles and releases are idempotent; a second Release must not
	// double-close the backing.
	h.Release()
}
