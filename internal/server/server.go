// Package server implements fairsqgd, the HTTP query-generation service:
// a registry of frozen graphs each sharing one match engine and candidate
// cache, an asynchronous job manager running the generation algorithms
// under per-job deadlines, and an observability surface (health, metrics,
// pprof, NDJSON progress streams).
package server

import (
	"context"
	"expvar"
	"net/http"
	"sync/atomic"

	"fairsqg/internal/cluster"
	"fairsqg/internal/graph"
	"fairsqg/internal/match"
)

// Options configures a Server.
type Options struct {
	// Workers / QueueDepth / Retention / DefaultTimeout / MaxTimeout /
	// GCInterval tune the job manager (see ManagerOptions).
	Jobs ManagerOptions
	// MatchWorkers is each graph engine's fan-out (<= 0 = GOMAXPROCS);
	// CandCacheSize bounds each graph's candidate cache (0 default,
	// < 0 disabled).
	MatchWorkers  int
	CandCacheSize int
	// DisableAttrIndex forces every graph engine onto the linear-scan
	// candidate-selection path instead of the sorted attribute indexes
	// (ablation; results are identical).
	DisableAttrIndex bool
	// Order selects the backtracking variable-ordering policy of every
	// graph engine (default match.OrderDynamic; match.OrderStatic is the
	// ablation setting; results are identical).
	Order match.Order
	// DisableIncScore forces every job's diversity evaluations onto the
	// from-scratch pair loop instead of the subset-delta incremental path
	// (ablation; results are bit-identical).
	DisableIncScore bool
	// MaxUploadBytes bounds graph upload bodies (default 64 MiB).
	MaxUploadBytes int64
	// SnapshotDir, when non-empty, enables warm restarts: every
	// registered graph is persisted there as a binary frozen-layout
	// snapshot (atomic temp-file + rename), and New restores the registry
	// from the directory before serving. Corrupt or partial files are
	// skipped (and partial ones cleaned), so a crash mid-write only costs
	// the warm start for that graph, never correctness.
	SnapshotDir string
	// MmapGraphs switches the snapshot store (SnapshotDir must be set) to
	// memory-mapped graph serving: restored and uploaded graphs are opened
	// with graph.OpenSnapshotMapped instead of decoded to the heap, so
	// startup is O(open) per graph and resident memory is bounded by the
	// pages queries actually touch — graphs larger than RAM serve fine.
	// Version 1 snapshot files fall back to the heap decoder (counted in
	// /metrics as storage.snapshots.v1Fallbacks).
	MmapGraphs bool
	// RequireGraph makes /readyz fail until a graph is registered.
	RequireGraph bool
	// CompactAfter, when > 0, checkpoints a live graph in the background
	// once it accumulates that many mutation ops since its last
	// compaction: the copy-on-write generations re-freeze into a
	// canonical layout and, with SnapshotDir set, the resurrected image
	// is written as the next-epoch snapshot and the delta log resets —
	// bounding both the overlay chain and the restart replay work.
	CompactAfter int
	// OnMutate, when set, observes every applied mutation batch (after
	// it is durable); online generation jobs use it to re-score archived
	// instances against the new graph state.
	OnMutate func(name string, ops []graph.Mutation, res *graph.ApplyResult)
	// Cluster, when set, puts the server in coordinator mode: par jobs
	// are scheduled over the coordinator's worker fleet instead of the
	// local lattice walk, /metrics grows a `cluster` section, and /readyz
	// additionally requires at least one live worker. The job API is
	// otherwise unchanged. The server does not own the coordinator's
	// lifecycle; the daemon closes it on shutdown.
	Cluster *cluster.Coordinator
	// Logger receives request and lifecycle logs; nil silences them.
	Logger printfLogger
}

// Server is the assembled service: registry + job manager + HTTP surface.
type Server struct {
	opts     Options
	reg      *Registry
	jobs     *Manager
	met      *metrics
	snaps    *snapshotStore
	restored []string
	logger   printfLogger
	handler  http.Handler
	draining atomic.Bool
}

// New builds a Server. It starts the job manager's worker pool; callers
// must Shutdown to release it. With Options.SnapshotDir set, the graph
// registry is restored from the directory's snapshots before New returns
// — restore failures (unreadable dir, corrupt files) degrade to a cold
// registry rather than failing construction.
func New(opts Options) *Server {
	if opts.MaxUploadBytes <= 0 {
		opts.MaxUploadBytes = 64 << 20
	}
	s := &Server{
		opts: opts,
		reg:  NewRegistry(opts.MatchWorkers, opts.CandCacheSize),
		met:  newMetrics(),
	}
	s.reg.disableAttrIndex = opts.DisableAttrIndex
	s.reg.order = opts.Order
	s.reg.compactAfter = opts.CompactAfter
	s.reg.onMutate = opts.OnMutate
	s.logger = opts.Logger
	if opts.SnapshotDir != "" {
		snaps, err := newSnapshotStore(opts.SnapshotDir, opts.MmapGraphs, opts.Logger)
		if err != nil && s.logger != nil {
			s.logger.Printf("snapshots disabled: %v", err)
		}
		if err == nil {
			s.snaps = snaps
			s.reg.snaps = snaps
			s.restored = snaps.restore(s.reg)
			if s.logger != nil && len(s.restored) > 0 {
				s.logger.Printf("restored %d graph(s) from snapshots: %v", len(s.restored), s.restored)
			}
		}
	}
	s.jobs = NewManager(s.reg, s.met, opts.Jobs)
	s.jobs.disableIncScore = opts.DisableIncScore
	s.jobs.cluster = opts.Cluster
	s.handler = s.routes()
	return s
}

// RestoredGraphs returns the names restored from the snapshot directory
// during New, sorted; the daemon uses it to skip -graph flags whose name
// already came back warm.
func (s *Server) RestoredGraphs() []string { return s.restored }

// Registry exposes the graph registry, e.g. for preloading from files.
func (s *Server) Registry() *Registry { return s.reg }

// Jobs exposes the job manager.
func (s *Server) Jobs() *Manager { return s.jobs }

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Shutdown stops intake, drains the job manager (see Manager.Shutdown for
// the deadline semantics), then tears down the registry: every graph's
// registry reference is dropped, which for mapped graphs unmaps the
// snapshot files once the drained jobs' handles are gone. Snapshot files
// themselves stay on disk for the next warm start.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.jobs.Shutdown(ctx)
	s.reg.closeAll()
	return err
}

// MetricsSnapshot renders the /metrics document: job counters and
// states, queue depth, per-graph engine/cache counters, and
// per-algorithm latency histograms.
func (s *Server) MetricsSnapshot() map[string]any {
	byState, queueDepth := s.jobs.counts()
	states := make(map[string]int, len(byState))
	for st, n := range byState {
		states[string(st)] = n
	}
	graphs := map[string]any{}
	var cacheHits, cacheMisses int64
	var distEvals, distHits, distMisses int64
	var indexSel, scanSel, sigPruned int64
	var indexBytes, columnBytes int64
	for _, info := range s.reg.List() {
		graphs[info.Name] = info
		cacheHits += info.Engine.Cache.Hits
		cacheMisses += info.Engine.Cache.Misses
		distEvals += info.Engine.Dist.Evals
		distHits += info.Engine.Dist.Hits
		distMisses += info.Engine.Dist.Misses
		indexSel += info.Engine.IndexSelections
		scanSel += info.Engine.ScanSelections
		sigPruned += info.Engine.SigPruned
		indexBytes += info.Memory.IndexBytes
		columnBytes += info.Memory.ColumnBytes
	}
	out := map[string]any{
		"jobs": map[string]any{
			"submitted":  s.met.jobsSubmitted.Value(),
			"shed":       s.met.jobsShed.Value(),
			"done":       s.met.jobsDone.Value(),
			"failed":     s.met.jobsFailed.Value(),
			"cancelled":  s.met.jobsCancelled.Value(),
			"states":     states,
			"queueDepth": queueDepth,
		},
		"cache": map[string]any{
			"hits":   cacheHits,
			"misses": cacheMisses,
		},
		"distCache": map[string]any{
			"evals":  distEvals,
			"hits":   distHits,
			"misses": distMisses,
		},
		"storage": func() map[string]any {
			st := map[string]any{
				"indexSelections": indexSel,
				"scanSelections":  scanSel,
				"sigPruned":       sigPruned,
				"indexBytes":      indexBytes,
				"columnBytes":     columnBytes,
			}
			st["mutations"] = s.reg.muts.counters()
			if s.snaps != nil {
				st["snapshots"] = s.snaps.counters()
				st["wal"] = s.snaps.wal.counters()
			}
			return st
		}(),
		"http": map[string]any{
			"requests": s.met.httpRequests.Value(),
			"byCode":   s.met.httpByCode.String(),
		},
		"latencyMs": s.met.latencySnapshot(),
		"graphs":    graphs,
	}
	if s.opts.Cluster != nil {
		out["cluster"] = s.opts.Cluster.MetricsSnapshot()
	}
	return out
}

// PublishExpvar registers the server's metrics snapshot in the
// process-global expvar namespace under name. Call at most once per
// process per name (expvar panics on duplicates) — the daemon does, tests
// don't.
func (s *Server) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return s.MetricsSnapshot() }))
}

// expvarDo walks the global expvar namespace; split out so httpapi stays
// free of the expvar import.
func expvarDo(f func(name, value string)) {
	expvar.Do(func(kv expvar.KeyValue) { f(kv.Key, kv.Value.String()) })
}
