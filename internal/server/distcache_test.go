package server

import (
	"net/http"
	"testing"
)

// distCacheMetrics scrapes the aggregate pair-distance cache counters off
// /metrics.
func distCacheMetrics(t *testing.T, baseURL string) (evals, hits int64) {
	t.Helper()
	var doc struct {
		DistCache struct {
			Evals int64 `json:"evals"`
			Hits  int64 `json:"hits"`
		} `json:"distCache"`
	}
	doJSON(t, http.MethodGet, baseURL+"/metrics", nil, http.StatusOK, &doc)
	return doc.DistCache.Evals, doc.DistCache.Hits
}

// TestDistCacheSharedAcrossJobs: two identical jobs on one graph share the
// engine-owned pair-distance cache — the second job's diversity scoring
// runs warm, visible in its result stats and in /metrics.
func TestDistCacheSharedAcrossJobs(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	g := testGraph(t, 7)
	uploadGraph(t, ts.URL, "talent", g)
	spec := testSpec("talent")

	st := submitJob(t, ts.URL, spec)
	if f := pollDone(t, ts.URL, st.ID); f.State != JobDone {
		t.Fatalf("first job state = %s (%s)", f.State, f.Error)
	}
	evals1, hits1 := distCacheMetrics(t, ts.URL)
	if evals1 == 0 {
		t.Fatal("first job evaluated no pairwise distances")
	}

	st2 := submitJob(t, ts.URL, spec)
	if f := pollDone(t, ts.URL, st2.ID); f.State != JobDone {
		t.Fatalf("second job state = %s (%s)", f.State, f.Error)
	}
	var res JobResult
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+st2.ID+"/result", nil, http.StatusOK, &res)
	if res.Stats.DistCache.Hits <= hits1 {
		t.Errorf("second job reports %d cumulative dist-cache hits, want more than %d",
			res.Stats.DistCache.Hits, hits1)
	}
	evals2, hits2 := distCacheMetrics(t, ts.URL)
	if hits2 <= hits1 {
		t.Errorf("dist-cache hits did not climb across identical jobs: %d -> %d", hits1, hits2)
	}
	if evals2 != evals1 {
		t.Errorf("second identical job re-evaluated distances: %d -> %d evals", evals1, evals2)
	}
}

// TestSpecLambdaPointer: an omitted lambda selects the default, an explicit
// JSON 0 reaches the config as a deliberate pure-relevance request.
func TestSpecLambdaPointer(t *testing.T) {
	r := NewRegistry(1, 0)
	if err := r.Put("talent", testGraph(t, 7)); err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire("talent")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()

	spec := testSpec("talent")
	cfg, err := buildConfig(&spec, h)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.LambdaSet {
		t.Error("omitted lambda marked as set")
	}

	zero := 0.0
	spec.Lambda = &zero
	cfg, err = buildConfig(&spec, h)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.LambdaSet || cfg.Lambda != 0 {
		t.Errorf("explicit lambda 0 lost: LambdaSet=%v Lambda=%v", cfg.LambdaSet, cfg.Lambda)
	}

	// A negative maxPairs passes through as the exact-scoring request.
	spec.MaxPairs = -1
	cfg, err = buildConfig(&spec, h)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxPairs != -1 {
		t.Errorf("maxPairs -1 rewritten to %d", cfg.MaxPairs)
	}
}
