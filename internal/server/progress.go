package server

import "sync"

// JobEvent is one NDJSON line of a job's progress stream.
type JobEvent struct {
	// Type is "progress" for verification samples and "state" for
	// lifecycle transitions (running/done/failed/cancelled); a "state"
	// event with a terminal State is the last line of the stream.
	Type string `json:"type"`
	// Seq numbers the events of one job from 1.
	Seq int `json:"seq"`
	// State accompanies "state" events.
	State string `json:"state,omitempty"`
	// Verified/Feasible/Matches/Div/Cov describe one sampled verification.
	Verified int     `json:"verified,omitempty"`
	Feasible bool    `json:"feasible,omitempty"`
	Matches  int     `json:"matches,omitempty"`
	Div      float64 `json:"div,omitempty"`
	Cov      float64 `json:"cov,omitempty"`
	// Error accompanies a failed terminal state.
	Error string `json:"error,omitempty"`
}

// progressHub buffers a job's events and fans them out to any number of
// stream subscribers. Publishers never block: a subscriber that falls
// behind its channel buffer has events dropped (the buffered replay is
// what guarantees a late subscriber still sees the history that fit the
// ring).
type progressHub struct {
	mu     sync.Mutex
	seq    int
	buf    []JobEvent // ring of the most recent events
	cap    int
	start  int // index of the oldest buffered event
	count  int
	subs   map[chan JobEvent]struct{}
	closed bool
}

func newProgressHub(buffer int) *progressHub {
	if buffer <= 0 {
		buffer = 1024
	}
	return &progressHub{cap: buffer, buf: make([]JobEvent, buffer), subs: make(map[chan JobEvent]struct{})}
}

// publish assigns the event its sequence number, appends it to the ring
// and offers it to every live subscriber. Safe for concurrent use —
// ParQGen invokes the verification hook from several workers.
func (h *progressHub) publish(ev JobEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	ev.Seq = h.seq
	if h.count == h.cap {
		h.buf[h.start] = ev
		h.start = (h.start + 1) % h.cap
	} else {
		h.buf[(h.start+h.count)%h.cap] = ev
		h.count++
	}
	for ch := range h.subs {
		select {
		case ch <- ev:
		default: // slow consumer: drop rather than stall the runner
		}
	}
}

// close ends the stream: subscriber channels are closed and later
// subscribe calls replay the buffer with a nil live channel.
func (h *progressHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
	}
	h.subs = make(map[chan JobEvent]struct{})
}

// subscribe returns the buffered history plus a live channel (nil when
// the stream already ended). cancel detaches the subscriber; it is safe
// to call after close.
func (h *progressHub) subscribe() (replay []JobEvent, live <-chan JobEvent, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay = make([]JobEvent, h.count)
	for i := 0; i < h.count; i++ {
		replay[i] = h.buf[(h.start+i)%h.cap]
	}
	if h.closed {
		return replay, nil, func() {}
	}
	ch := make(chan JobEvent, 256)
	h.subs[ch] = struct{}{}
	return replay, ch, func() {
		h.mu.Lock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
		h.mu.Unlock()
	}
}
