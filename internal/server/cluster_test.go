package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fairsqg/internal/cluster"
	"fairsqg/internal/pareto"
)

// newClusterWorker spins up one in-process cluster worker daemon.
func newClusterWorker(t *testing.T) (*cluster.Worker, *httptest.Server) {
	t.Helper()
	w := cluster.NewWorker(cluster.WorkerOptions{})
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	return w, srv
}

// newCoordinator builds a coordinator over the given worker URLs with
// test-friendly retry pacing.
func newCoordinator(t *testing.T, urls ...string) *cluster.Coordinator {
	t.Helper()
	c, err := cluster.NewCoordinator(cluster.CoordinatorOptions{
		Workers:        urls,
		Replicas:       len(urls),
		SlabRetries:    5,
		RetryBase:      5 * time.Millisecond,
		HealthInterval: 50 * time.Millisecond,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func resultPoints(res *JobResult) []pareto.Point {
	pts := make([]pareto.Point, len(res.Queries))
	for i, q := range res.Queries {
		pts[i] = pareto.Point{Div: q.Diversity, Cov: q.Coverage}
	}
	return pts
}

func pointBoxes(pts []pareto.Point, eps float64) map[pareto.Box]bool {
	set := make(map[pareto.Box]bool, len(pts))
	for _, p := range pts {
		set[pareto.BoxOf(p, eps)] = true
	}
	return set
}

// TestDistributedEndToEnd runs a par job through the full HTTP stack in
// coordinator mode — upload, submit, progress stream, result — against
// two in-process workers, and checks the distributed archive is the
// single-process ParQGen archive: identical box sets, mutual
// ε-domination, identical work counters.
func TestDistributedEndToEnd(t *testing.T) {
	wa, sa := newClusterWorker(t)
	wb, sb := newClusterWorker(t)
	coord := newCoordinator(t, sa.URL, sb.URL)
	_, ts := newTestServer(t, Options{Cluster: coord})

	g := testGraph(t, 7)
	uploadGraph(t, ts.URL, "talent", g)

	spec := testSpec("talent")
	spec.Algorithm = "par"
	st := submitJob(t, ts.URL, spec)
	done := pollDone(t, ts.URL, st.ID)
	if done.State != JobDone {
		t.Fatalf("distributed job state = %s (%s)", done.State, done.Error)
	}

	var res JobResult
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/result", nil, http.StatusOK, &res)
	if res.Algorithm != "par" || len(res.Queries) == 0 {
		t.Fatalf("distributed result: %+v", res)
	}

	ref := directRun(t, spec)
	if got, want := pointBoxes(resultPoints(&res), res.Eps), pointBoxes(resultPoints(ref), ref.Eps); !reflect.DeepEqual(got, want) {
		t.Errorf("distributed box set %v != single-process box set %v", got, want)
	}
	if em := pareto.MinEps(resultPoints(&res), resultPoints(ref)); em > res.Eps+1e-9 {
		t.Errorf("distributed archive does not ε-dominate the reference: ε_m = %v", em)
	}
	if em := pareto.MinEps(resultPoints(ref), resultPoints(&res)); em > res.Eps+1e-9 {
		t.Errorf("reference does not ε-dominate the distributed archive: ε_m = %v", em)
	}
	if res.Stats.Spawned != ref.Stats.Spawned || res.Stats.Verified != ref.Stats.Verified ||
		res.Stats.Feasible != ref.Stats.Feasible || res.Stats.Pruned != ref.Stats.Pruned {
		t.Errorf("distributed stats %+v != reference %+v", res.Stats, ref.Stats)
	}

	// Both workers did slab work; the progress stream carried slab events.
	if wa.MetricsSnapshot() == nil || wb.MetricsSnapshot() == nil {
		t.Fatal("worker metrics unavailable")
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	slabEvents := 0
	dec := json.NewDecoder(resp.Body)
	for {
		var ev JobEvent
		if err := dec.Decode(&ev); err != nil {
			break
		}
		if ev.Type == "slab" {
			slabEvents++
		}
	}
	if slabEvents == 0 {
		t.Error("no slab events on the progress stream")
	}

	// The coordinator surfaces in /metrics under `cluster`.
	var met map[string]any
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, http.StatusOK, &met)
	cl, ok := met["cluster"].(map[string]any)
	if !ok {
		t.Fatalf("/metrics has no cluster section: %v", met)
	}
	if cl["liveWorkers"].(float64) != 2 {
		t.Errorf("cluster.liveWorkers = %v, want 2", cl["liveWorkers"])
	}
	if cl["slabsDispatched"].(float64) == 0 {
		t.Error("cluster.slabsDispatched = 0 after a distributed job")
	}
	if _, ok := cl["slabLatencyMs"]; !ok {
		t.Error("cluster metrics missing slabLatencyMs histogram")
	}

	// Local algorithms still run locally in coordinator mode.
	local := testSpec("talent")
	st2 := submitJob(t, ts.URL, local)
	if d := pollDone(t, ts.URL, st2.ID); d.State != JobDone {
		t.Fatalf("local bi job in coordinator mode: %s (%s)", d.State, d.Error)
	}
}

// killableHandler lets one slab request through, then drops every
// connection — the worker process "dies" mid-job.
type killableHandler struct {
	inner http.Handler
	slabs atomic.Int64
	dead  atomic.Bool
}

func (k *killableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/cluster/slab" && k.slabs.Add(1) > 1 {
		k.dead.Store(true)
	}
	if k.dead.Load() {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
			return
		}
		panic("test server must support hijack")
	}
	k.inner.ServeHTTP(w, r)
}

// TestDistributedFailover kills one of two workers mid-job at the HTTP
// level: the job must finish via failover and the archive must still
// match the single-process reference — no lost and no duplicated slabs.
func TestDistributedFailover(t *testing.T) {
	wa := cluster.NewWorker(cluster.WorkerOptions{})
	ka := &killableHandler{inner: wa.Handler()}
	sa := httptest.NewServer(ka)
	defer sa.Close()
	_, sb := newClusterWorker(t)
	coord := newCoordinator(t, sa.URL, sb.URL)
	_, ts := newTestServer(t, Options{Cluster: coord})

	g := testGraph(t, 7)
	uploadGraph(t, ts.URL, "talent", g)
	spec := testSpec("talent")
	spec.Algorithm = "par"
	st := submitJob(t, ts.URL, spec)
	done := pollDone(t, ts.URL, st.ID)
	if done.State != JobDone {
		t.Fatalf("job did not survive worker death: %s (%s)", done.State, done.Error)
	}

	var res JobResult
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/result", nil, http.StatusOK, &res)
	ref := directRun(t, spec)
	if got, want := pointBoxes(resultPoints(&res), res.Eps), pointBoxes(resultPoints(ref), ref.Eps); !reflect.DeepEqual(got, want) {
		t.Errorf("failover box set %v != reference %v", got, want)
	}
	// Exactly-once slab accounting: the merged work counters equal one
	// clean pass over the lattice, so no slab was lost or double-counted.
	if res.Stats.Spawned != ref.Stats.Spawned || res.Stats.Verified != ref.Stats.Verified ||
		res.Stats.Feasible != ref.Stats.Feasible || res.Stats.Pruned != ref.Stats.Pruned {
		t.Errorf("failover stats %+v != reference %+v (lost or duplicated slabs)", res.Stats, ref.Stats)
	}
	if !ka.dead.Load() {
		t.Fatal("doomed worker never got a second slab; nothing failed over")
	}
	var met map[string]any
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, http.StatusOK, &met)
	cl := met["cluster"].(map[string]any)
	if cl["slabsRetried"].(float64) == 0 {
		t.Error("cluster.slabsRetried = 0 despite a mid-job worker death")
	}
}

// TestReadyzLiveWorkers: in coordinator mode /readyz requires at least
// one live worker.
func TestReadyzLiveWorkers(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()
	coord := newCoordinator(t, url)
	_, ts := newTestServer(t, Options{Cluster: coord})
	// The fleet starts optimistically alive; wait for the health sweep to
	// notice the dead worker.
	deadline := time.Now().Add(5 * time.Second)
	for coord.LiveWorkers() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with a dead fleet = %d, want 503", resp.StatusCode)
	}
}

// blockingJob occupies a manager worker until released, so queue-full
// shedding in the batch test is deterministic.
func blockingJob(t *testing.T, s *Server, graphName string) (release func()) {
	t.Helper()
	ch := make(chan struct{})
	handle, err := s.reg.Acquire(graphName)
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec(graphName)
	job, err := s.jobs.enqueue(&spec, handle, func(ctx context.Context, hub *progressHub) (*JobResult, error) {
		select {
		case <-ch:
		case <-ctx.Done():
		}
		return &JobResult{}, nil
	}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st, _ := s.jobs.Status(job.ID); st.State == JobRunning {
			var once sync.Once
			return func() { once.Do(func() { close(ch) }) }
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("blocking job never started")
	return nil
}

// TestBatchSubmit: per-item accept/shed semantics identical to single
// submit — valid specs enqueue, invalid ones carry their would-be status,
// and queue-full sheds 429 that item with a top-level Retry-After.
func TestBatchSubmit(t *testing.T) {
	s, ts := newTestServer(t, Options{Jobs: ManagerOptions{Workers: 1, QueueDepth: 2}})
	g := tinyGraph(t)
	uploadGraph(t, ts.URL, "mini", g)
	release := blockingJob(t, s, "mini")
	defer release()

	// The single manager worker is blocked and the queue holds 2: specs
	// [bad-graph, ok, ok, shed].
	bad := tinySpec("nope")
	specs := []JobSpec{bad, tinySpec("mini"), tinySpec("mini"), tinySpec("mini")}
	body, _ := json.Marshal(specs)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs/batch", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed batch has no Retry-After header")
	}
	var out struct {
		Items    []BatchItem `json:"items"`
		Accepted int         `json:"accepted"`
		Rejected int         `json:"rejected"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 4 || out.Accepted != 2 || out.Rejected != 2 {
		t.Fatalf("batch outcome: %+v", out)
	}
	wantStatus := []int{http.StatusNotFound, http.StatusAccepted, http.StatusAccepted, http.StatusTooManyRequests}
	for i, item := range out.Items {
		if item.Status != wantStatus[i] {
			t.Errorf("item %d status %d, want %d (%+v)", i, item.Status, wantStatus[i], item)
		}
		if item.Accepted != (wantStatus[i] == http.StatusAccepted) {
			t.Errorf("item %d accepted=%v inconsistent with status %d", i, item.Accepted, item.Status)
		}
		if item.Accepted && item.ID == "" {
			t.Errorf("item %d accepted without an ID", i)
		}
	}

	// Accepted jobs complete once the blocker releases.
	release()
	for _, item := range out.Items {
		if item.Accepted {
			if st := pollDone(t, ts.URL, item.ID); st.State != JobDone {
				t.Errorf("batch job %s: %s (%s)", item.ID, st.State, st.Error)
			}
		}
	}

	// Malformed batches are rejected whole.
	for _, bad := range []string{`{}`, `[]`, `not json`} {
		resp, err := http.Post(ts.URL+"/v1/jobs/batch", "application/json", bytes.NewReader([]byte(bad)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("batch body %q = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestRequestIDPropagation: an inbound X-Request-Id is honored and
// echoed instead of being replaced.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "upstream-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "upstream-42" {
		t.Fatalf("X-Request-Id = %q, want the inbound id echoed", got)
	}
	// Without an inbound ID one is assigned.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("no X-Request-Id assigned")
	}
}
