package server

import (
	"expvar"
	"fmt"
	"sync"
)

// latencyBucketsMs are the upper bounds of the per-algorithm latency
// histogram, in milliseconds; the implicit last bucket is +Inf.
var latencyBucketsMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// histogram is a fixed-bucket latency histogram safe for concurrent use.
type histogram struct {
	mu      sync.Mutex
	count   int64
	sumMs   float64
	buckets []int64 // len(latencyBucketsMs)+1, last = overflow
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]int64, len(latencyBucketsMs)+1)}
}

func (h *histogram) observe(ms float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sumMs += ms
	for i, ub := range latencyBucketsMs {
		if ms <= ub {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(h.buckets)-1]++
}

// snapshot renders the histogram as cumulative "le" counts, the shape
// Prometheus-style scrapers expect.
func (h *histogram) snapshot() map[string]any {
	h.mu.Lock()
	defer h.mu.Unlock()
	le := make(map[string]int64, len(h.buckets))
	cum := int64(0)
	for i, ub := range latencyBucketsMs {
		cum += h.buckets[i]
		le[fmt.Sprintf("%g", ub)] = cum
	}
	le["+Inf"] = h.count
	return map[string]any{"count": h.count, "sum_ms": h.sumMs, "le": le}
}

// metrics aggregates the service counters surfaced at /metrics. The
// counters are expvar values held per server instance (published into the
// process-global expvar namespace by the daemon, not here, so tests can
// run many servers in one process).
type metrics struct {
	jobsSubmitted expvar.Int
	jobsShed      expvar.Int
	jobsDone      expvar.Int
	jobsFailed    expvar.Int
	jobsCancelled expvar.Int
	httpRequests  expvar.Int
	httpByCode    expvar.Map

	mu      sync.Mutex
	latency map[string]*histogram // keyed by algorithm
}

func newMetrics() *metrics {
	m := &metrics{latency: make(map[string]*histogram)}
	m.httpByCode.Init()
	return m
}

// observeLatency records one finished run's wall time for its algorithm.
func (m *metrics) observeLatency(algorithm string, ms float64) {
	m.mu.Lock()
	h, ok := m.latency[algorithm]
	if !ok {
		h = newHistogram()
		m.latency[algorithm] = h
	}
	m.mu.Unlock()
	h.observe(ms)
}

// latencySnapshot renders every algorithm's histogram.
func (m *metrics) latencySnapshot() map[string]any {
	m.mu.Lock()
	hs := make(map[string]*histogram, len(m.latency))
	for k, h := range m.latency {
		hs[k] = h
	}
	m.mu.Unlock()
	out := make(map[string]any, len(hs))
	for k, h := range hs {
		out[k] = h.snapshot()
	}
	return out
}
