package server

import (
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"fairsqg/internal/graph"
	"fairsqg/internal/match"
)

// graphNameRe restricts registry names so they embed cleanly in URLs,
// logs and metrics keys.
var graphNameRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// graphEntry is one registered graph with its per-graph shared evaluation
// state: a single concurrent match engine (and thus one candidate cache)
// serves every job that targets the graph, so refinement siblings across
// jobs reuse each other's filter scans.
type graphEntry struct {
	name     string
	g        *graph.Graph
	engine   *match.Engine
	loadedAt time.Time
	refs     int
	removed  bool
}

// GraphInfo is the externally visible summary of a registered graph.
type GraphInfo struct {
	Name     string    `json:"name"`
	Nodes    int       `json:"nodes"`
	Edges    int       `json:"edges"`
	Refs     int       `json:"refs"`
	LoadedAt time.Time `json:"loadedAt"`
	// Memory reports the frozen graph's columnar-storage and sorted-index
	// footprint, fixed at freeze time.
	Memory graph.MemoryStats `json:"memory"`
	// Engine reports the shared engine's cumulative counters, including
	// the candidate cache — the numbers /metrics scrapes per graph.
	Engine match.EngineStats `json:"engine"`
}

// Registry holds named, frozen graphs and hands out ref-counted handles.
// Loading happens once per graph; every request afterwards shares the
// frozen structure and the per-graph match engine.
//
// Teardown of snapshot-backed resources is delegated to the graph's own
// backing-store reference count: the registry holds one reference per
// entry (dropped by Remove or closeAll), and every Handle holds one more
// (Acquire pairs graph.Retain with Release's graph.Close). For mapped
// graphs the underlying file mapping is therefore unmapped exactly when
// the entry is gone AND the last in-flight job releases its handle; for
// heap graphs all of this is a no-op.
type Registry struct {
	mu      sync.Mutex
	graphs  map[string]*graphEntry
	workers int
	cache   int
	// putMu serializes Put/Remove so a mapped-mode Put can persist the
	// snapshot and reopen it mapped without racing another registration
	// of the same name (Acquire/Release only take mu and are unaffected).
	putMu sync.Mutex
	// disableAttrIndex and order propagate the ablation knobs to every
	// per-graph engine created by Put.
	disableAttrIndex bool
	order            match.Order
	// snaps, when set, persists every registered graph as a binary
	// snapshot and deletes the file again on Remove; restore on startup
	// goes through putRestored so freshly loaded snapshots aren't
	// immediately rewritten.
	snaps *snapshotStore
}

// NewRegistry returns an empty registry. workers is the per-graph engine
// fan-out (<= 0 selects GOMAXPROCS); cacheSize bounds each graph's
// candidate cache (0 default, < 0 disabled).
func NewRegistry(workers, cacheSize int) *Registry {
	return &Registry{graphs: make(map[string]*graphEntry), workers: workers, cache: cacheSize}
}

// Put registers a frozen graph under name, rejecting duplicates. When a
// snapshot store is attached, the frozen layout is persisted (atomic
// temp-file + rename) so the next startup restores the graph without
// re-parsing or re-freezing. In mapped mode the freshly saved snapshot is
// immediately reopened memory-mapped and the mapped graph is what gets
// registered, so an uploaded graph's heap copy is garbage the moment Put
// returns; if the save or reopen fails the heap graph serves as-is.
func (r *Registry) Put(name string, g *graph.Graph) error {
	r.putMu.Lock()
	defer r.putMu.Unlock()
	if err := r.check(name, g); err != nil {
		return err
	}
	if r.snaps != nil {
		if r.snaps.save(name, g) && r.snaps.mmap {
			if mg, err := r.snaps.load(name); err == nil {
				g = mg
			} else {
				r.snaps.logf("snapshot reopen %s: %v (serving from heap)", name, err)
			}
		}
	}
	return r.put(name, g)
}

// putRestored registers a graph decoded from its own snapshot; identical
// to Put except the file on disk is already current, so nothing is
// rewritten.
func (r *Registry) putRestored(name string, g *graph.Graph) error {
	return r.put(name, g)
}

// check validates a registration without inserting, so Put can reject
// before persisting anything.
func (r *Registry) check(name string, g *graph.Graph) error {
	if !graphNameRe.MatchString(name) {
		return fmt.Errorf("server: invalid graph name %q (want [A-Za-z0-9._-]{1,64})", name)
	}
	if g == nil || !g.Frozen() {
		return fmt.Errorf("server: graph %q must be frozen", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.graphs[name]; dup {
		return fmt.Errorf("server: graph %q already registered", name)
	}
	return nil
}

func (r *Registry) put(name string, g *graph.Graph) error {
	if err := r.check(name, g); err != nil {
		return err
	}
	entry := &graphEntry{
		name: name,
		g:    g,
		engine: match.NewEngine(g, match.EngineOptions{
			Workers:          r.workers,
			CandCacheSize:    r.cache,
			Order:            r.order,
			DisableAttrIndex: r.disableAttrIndex,
		}),
		loadedAt: time.Now(),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.graphs[name]; dup {
		return fmt.Errorf("server: graph %q already registered", name)
	}
	r.graphs[name] = entry
	return nil
}

// Read parses a graph from rd in the named format ("tsv", "json" or
// "snapshot"), freezes it (snapshots arrive frozen) and registers it
// under name.
func (r *Registry) Read(name, format string, rd io.Reader) error {
	var (
		g   *graph.Graph
		err error
	)
	switch format {
	case "json":
		g, err = graph.ReadJSON(rd)
	case "tsv", "":
		g, err = graph.ReadTSV(rd)
	case "snapshot":
		g, err = graph.ReadSnapshot(rd)
	default:
		return fmt.Errorf("server: unknown graph format %q (want tsv, json or snapshot)", format)
	}
	if err != nil {
		return err
	}
	return r.Put(name, g)
}

// LoadFile reads a graph file (format by extension: .json is JSON,
// .fsnap a binary snapshot, anything else TSV) and registers it; used by
// the daemon's -graph flag. Snapshot files take the file-backed fast path
// (sized read, no io.Reader growth).
func (r *Registry) LoadFile(name, path string) error {
	if strings.HasSuffix(strings.ToLower(path), snapExt) {
		g, err := graph.ReadSnapshotFile(path)
		if err != nil {
			return err
		}
		return r.Put(name, g)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	format := "tsv"
	if strings.HasSuffix(strings.ToLower(path), ".json") {
		format = "json"
	}
	return r.Read(name, format, f)
}

// Handle is a ref-counted lease on a registered graph. The graph and
// engine stay valid until Release, even if the graph is removed from the
// registry in the meantime.
type Handle struct {
	r     *Registry
	entry *graphEntry
	once  sync.Once
}

// Graph returns the leased frozen graph.
func (h *Handle) Graph() *graph.Graph { return h.entry.g }

// Engine returns the graph's shared match engine.
func (h *Handle) Engine() *match.Engine { return h.entry.engine }

// Name returns the graph's registry name.
func (h *Handle) Name() string { return h.entry.name }

// Release drops the lease; it is idempotent. For mapped graphs this also
// drops the lease's backing-store reference — the file mapping goes away
// when the last release meets an already-removed entry.
func (h *Handle) Release() {
	h.once.Do(func() {
		h.r.mu.Lock()
		h.entry.refs--
		h.r.mu.Unlock()
		if err := h.entry.g.Close(); err != nil && h.r.snaps != nil {
			h.r.snaps.logf("snapshot unmap %s: %v", h.entry.name, err)
		}
	})
}

// Acquire leases a registered graph by name. The lease pins the graph's
// backing store (mmap region for mapped graphs): reads through the handle
// stay valid even if the graph is removed from the registry mid-job.
func (r *Registry) Acquire(name string) (*Handle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	entry, ok := r.graphs[name]
	if !ok {
		return nil, fmt.Errorf("server: graph %q not registered", name)
	}
	entry.refs++
	entry.g.Retain()
	return &Handle{r: r, entry: entry}, nil
}

// Remove unregisters a graph and deletes its snapshot, if any. Existing
// handles remain valid; the entry's memory — including any file mapping —
// is reclaimed once the last one releases.
func (r *Registry) Remove(name string) error {
	r.putMu.Lock()
	defer r.putMu.Unlock()
	r.mu.Lock()
	entry, ok := r.graphs[name]
	if ok {
		entry.removed = true
		delete(r.graphs, name)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: graph %q not registered", name)
	}
	r.dropEntry(entry)
	if r.snaps != nil {
		r.snaps.remove(name)
	}
	return nil
}

// dropEntry releases the registry's own backing-store reference for an
// entry already unlinked from the map (outstanding handles keep theirs).
func (r *Registry) dropEntry(entry *graphEntry) {
	if r.snaps != nil {
		r.snaps.unmapped(entry.g)
	}
	if err := entry.g.Close(); err != nil && r.snaps != nil {
		r.snaps.logf("snapshot unmap %s: %v", entry.name, err)
	}
}

// closeAll unregisters every graph and drops the registry's references,
// for server shutdown after the job manager has drained; snapshot files
// stay on disk for the next warm start.
func (r *Registry) closeAll() {
	r.putMu.Lock()
	defer r.putMu.Unlock()
	r.mu.Lock()
	entries := make([]*graphEntry, 0, len(r.graphs))
	for name, e := range r.graphs {
		e.removed = true
		entries = append(entries, e)
		delete(r.graphs, name)
	}
	r.mu.Unlock()
	for _, e := range entries {
		r.dropEntry(e)
	}
}

// Info returns one graph's summary.
func (r *Registry) Info(name string) (GraphInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	entry, ok := r.graphs[name]
	if !ok {
		return GraphInfo{}, false
	}
	return infoOf(entry), true
}

// List returns every registered graph's summary, sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	infos := make([]GraphInfo, 0, len(r.graphs))
	for _, e := range r.graphs {
		infos = append(infos, infoOf(e))
	}
	r.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

func infoOf(e *graphEntry) GraphInfo {
	return GraphInfo{
		Name:     e.name,
		Nodes:    e.g.NumNodes(),
		Edges:    e.g.NumEdges(),
		Refs:     e.refs,
		LoadedAt: e.loadedAt,
		Memory:   e.g.Memory(),
		Engine:   e.engine.Stats(),
	}
}
