package server

import (
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fairsqg/internal/graph"
	"fairsqg/internal/match"
)

// graphNameRe restricts registry names so they embed cleanly in URLs,
// logs and metrics keys (and so the epoch-qualified snapshot names,
// which use '@', can never collide with a registry name).
var graphNameRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// graphEntry is one registered graph with its per-graph shared evaluation
// state. The graph itself lives behind a graph.Live mutation head: cur is
// the generation currently served (the registry holds one backing
// reference to it), and engine is the match engine built over exactly
// that generation. A mutation batch produces the next generation and a
// fresh engine around the same shared caches, so refinement siblings
// across jobs keep reusing each other's filter scans while stale entries
// can never be served (cache keys carry the graph's (lineage, version)).
type graphEntry struct {
	name     string
	live     *graph.Live
	cur      *graph.Graph  // served generation; swapped with engine under r.mu
	base     *graph.Graph  // generation charged to mappedBytes accounting
	engine   *match.Engine // engine over cur
	loadedAt time.Time

	// retired accumulates the matcher counters of engines replaced by
	// mutations, so /metrics never loses completed work (guarded by r.mu).
	retired match.EngineStats

	// mutMu serializes this entry's mutate / checkpoint / remove paths;
	// Acquire and Release never take it.
	mutMu      sync.Mutex
	wal        *graph.WALWriter // lazily opened delta log; nil without a store
	compacting bool             // one background checkpoint at a time (mutMu)

	epoch    atomic.Uint64 // snapshot epoch the delta log extends
	mutOps   atomic.Int64  // mutation ops applied since registration
	replayed int           // delta-log batches replayed at restore

	refs    int
	removed bool
}

// GraphInfo is the externally visible summary of a registered graph.
type GraphInfo struct {
	Name     string    `json:"name"`
	Nodes    int       `json:"nodes"`
	Edges    int       `json:"edges"`
	Refs     int       `json:"refs"`
	LoadedAt time.Time `json:"loadedAt"`
	// Version counts the graph's mutation generations (1 = as loaded);
	// Mutations is the total mutation ops applied since registration, and
	// ReplayedBatches how many delta-log batches restore replayed to reach
	// the starting state. Epoch identifies the on-disk base snapshot.
	Version         uint64 `json:"version"`
	Mutations       int64  `json:"mutations"`
	ReplayedBatches int    `json:"replayedBatches,omitempty"`
	Epoch           uint64 `json:"snapshotEpoch"`
	// Memory reports the frozen graph's columnar-storage and sorted-index
	// footprint, fixed at freeze time.
	Memory graph.MemoryStats `json:"memory"`
	// Engine reports the shared engine's cumulative counters, including
	// the candidate cache — the numbers /metrics scrapes per graph.
	// Matcher counters of engines retired by mutations are folded in.
	Engine match.EngineStats `json:"engine"`
}

// mutationStats aggregates the registry's mutation counters for the
// /metrics storage.mutations section.
type mutationStats struct {
	batches         atomic.Int64 // batches applied successfully
	ops             atomic.Int64 // individual mutations inside them
	rejected        atomic.Int64 // batches refused by validation
	compactions     atomic.Int64 // Live.Compact runs
	checkpoints     atomic.Int64 // compactions fully persisted (snapshot + log reset)
	checkpointFails atomic.Int64 // compactions whose persistence failed
}

func (m *mutationStats) counters() map[string]any {
	return map[string]any{
		"batches":         m.batches.Load(),
		"ops":             m.ops.Load(),
		"rejected":        m.rejected.Load(),
		"compactions":     m.compactions.Load(),
		"checkpoints":     m.checkpoints.Load(),
		"checkpointFails": m.checkpointFails.Load(),
	}
}

// Registry holds named, frozen graphs and hands out ref-counted handles.
// Loading happens once per graph; every request afterwards shares the
// frozen structure and the per-graph match engine. Mutations go through
// Mutate, which advances the graph's generation, persists the batch to
// the graph's delta log, and swaps in an engine over the new generation.
//
// Teardown of snapshot-backed resources is delegated to the graph's own
// backing-store reference count: the registry holds one reference per
// entry (dropped by Remove or closeAll), and every Handle holds one more
// (Acquire pairs graph.Retain with Release's graph.Close). For mapped
// graphs the underlying file mapping is therefore unmapped exactly when
// the entry is gone AND the last in-flight job releases its handle; for
// heap graphs all of this is a no-op.
type Registry struct {
	mu      sync.Mutex
	graphs  map[string]*graphEntry
	workers int
	cache   int
	// putMu serializes Put/Remove so a mapped-mode Put can persist the
	// snapshot and reopen it mapped without racing another registration
	// of the same name (Acquire/Release only take mu and are unaffected).
	putMu sync.Mutex
	// disableAttrIndex and order propagate the ablation knobs to every
	// per-graph engine created by Put.
	disableAttrIndex bool
	order            match.Order
	// compactAfter, when > 0, triggers a background checkpoint once a
	// graph accumulates that many mutation ops since its last compaction.
	compactAfter int
	// snaps, when set, persists every registered graph as a binary
	// snapshot plus a delta log of its mutation batches, and deletes the
	// files again on Remove; restore on startup goes through
	// putRestoredLive so freshly loaded snapshots aren't immediately
	// rewritten.
	snaps *snapshotStore
	muts  mutationStats
	// onMutate, when set, observes every applied batch (the online
	// generation hook); called outside all registry locks.
	onMutate func(name string, ops []graph.Mutation, res *graph.ApplyResult)
}

// NewRegistry returns an empty registry. workers is the per-graph engine
// fan-out (<= 0 selects GOMAXPROCS); cacheSize bounds each graph's
// candidate cache (0 default, < 0 disabled).
func NewRegistry(workers, cacheSize int) *Registry {
	return &Registry{graphs: make(map[string]*graphEntry), workers: workers, cache: cacheSize}
}

// Put registers a frozen graph under name, rejecting duplicates. When a
// snapshot store is attached, the frozen layout is persisted (atomic
// temp-file + rename) so the next startup restores the graph without
// re-parsing or re-freezing, and any stale delta log or checkpoint file
// left by an earlier incarnation of the name is deleted. In mapped mode
// the freshly saved snapshot is immediately reopened memory-mapped and
// the mapped graph is what gets registered, so an uploaded graph's heap
// copy is garbage the moment Put returns; if the save or reopen fails the
// heap graph serves as-is.
func (r *Registry) Put(name string, g *graph.Graph) error {
	r.putMu.Lock()
	defer r.putMu.Unlock()
	if err := r.check(name, g); err != nil {
		return err
	}
	if r.snaps != nil {
		r.snaps.clearDerived(name)
		if r.snaps.save(name, g) && r.snaps.mmap {
			if mg, err := r.snaps.load(name); err == nil {
				g = mg
			} else {
				r.snaps.logf("snapshot reopen %s: %v (serving from heap)", name, err)
			}
		}
	}
	return r.putLive(name, graph.NewLive(g), 0, 0)
}

// putRestoredLive registers a graph restored from its snapshot and delta
// log; identical to Put except the files on disk are already current, so
// nothing is rewritten.
func (r *Registry) putRestoredLive(name string, l *graph.Live, epoch uint64, replayed int) error {
	return r.putLive(name, l, epoch, replayed)
}

// check validates a registration without inserting, so Put can reject
// before persisting anything.
func (r *Registry) check(name string, g *graph.Graph) error {
	if !graphNameRe.MatchString(name) {
		return fmt.Errorf("server: invalid graph name %q (want [A-Za-z0-9._-]{1,64})", name)
	}
	if g == nil || !g.Frozen() {
		return fmt.Errorf("server: graph %q must be frozen", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.graphs[name]; dup {
		return fmt.Errorf("server: graph %q already registered", name)
	}
	return nil
}

func (r *Registry) putLive(name string, l *graph.Live, epoch uint64, replayed int) error {
	if err := r.check(name, l.Graph()); err != nil {
		l.Close()
		return err
	}
	cur := l.Acquire()
	entry := &graphEntry{
		name:     name,
		live:     l,
		cur:      cur,
		base:     cur,
		engine:   r.newEngine(cur, nil),
		loadedAt: time.Now(),
		replayed: replayed,
	}
	entry.epoch.Store(epoch)
	r.mu.Lock()
	if _, dup := r.graphs[name]; dup {
		r.mu.Unlock()
		cur.Close()
		l.Close()
		return fmt.Errorf("server: graph %q already registered", name)
	}
	r.graphs[name] = entry
	r.mu.Unlock()
	return nil
}

// newEngine builds an engine over g with the registry's knobs; prev, when
// non-nil, donates its candidate and pair-distance caches so the new
// generation starts warm (entries are keyed by graph generation, so the
// handover is always safe).
func (r *Registry) newEngine(g *graph.Graph, prev *match.Engine) *match.Engine {
	opts := match.EngineOptions{
		Workers:          r.workers,
		CandCacheSize:    r.cache,
		Order:            r.order,
		DisableAttrIndex: r.disableAttrIndex,
	}
	if prev != nil {
		opts.SharedCache = prev.Cache()
		opts.SharedDistCache = prev.DistCache()
	}
	return match.NewEngine(g, opts)
}

// Read parses a graph from rd in the named format ("tsv", "json" or
// "snapshot"), freezes it (snapshots arrive frozen) and registers it
// under name.
func (r *Registry) Read(name, format string, rd io.Reader) error {
	var (
		g   *graph.Graph
		err error
	)
	switch format {
	case "json":
		g, err = graph.ReadJSON(rd)
	case "tsv", "":
		g, err = graph.ReadTSV(rd)
	case "snapshot":
		g, err = graph.ReadSnapshot(rd)
	default:
		return fmt.Errorf("server: unknown graph format %q (want tsv, json or snapshot)", format)
	}
	if err != nil {
		return err
	}
	return r.Put(name, g)
}

// LoadFile reads a graph file (format by extension: .json is JSON,
// .fsnap a binary snapshot, anything else TSV) and registers it; used by
// the daemon's -graph flag. Snapshot files take the file-backed fast path
// (sized read, no io.Reader growth).
func (r *Registry) LoadFile(name, path string) error {
	if strings.HasSuffix(strings.ToLower(path), snapExt) {
		g, err := graph.ReadSnapshotFile(path)
		if err != nil {
			return err
		}
		return r.Put(name, g)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	format := "tsv"
	if strings.HasSuffix(strings.ToLower(path), ".json") {
		format = "json"
	}
	return r.Read(name, format, f)
}

// Handle is a ref-counted lease on a registered graph: one consistent
// (generation, engine) pair captured at Acquire time. Both stay valid
// until Release, even if the graph is mutated or removed from the
// registry in the meantime — a job always evaluates against the single
// generation it started on.
type Handle struct {
	r      *Registry
	entry  *graphEntry
	g      *graph.Graph
	engine *match.Engine
	once   sync.Once
}

// Graph returns the leased frozen generation.
func (h *Handle) Graph() *graph.Graph { return h.g }

// Engine returns the match engine over exactly that generation.
func (h *Handle) Engine() *match.Engine { return h.engine }

// Name returns the graph's registry name.
func (h *Handle) Name() string { return h.entry.name }

// Release drops the lease; it is idempotent. For mapped graphs this also
// drops the lease's backing-store reference — the file mapping goes away
// when the last release meets an already-removed entry.
func (h *Handle) Release() {
	h.once.Do(func() {
		h.r.mu.Lock()
		h.entry.refs--
		h.r.mu.Unlock()
		if err := h.g.Close(); err != nil && h.r.snaps != nil {
			h.r.snaps.logf("snapshot unmap %s: %v", h.entry.name, err)
		}
	})
}

// Acquire leases a registered graph by name. The lease pins the served
// generation's backing store (mmap region for mapped graphs): reads
// through the handle stay valid even if the graph is mutated or removed
// from the registry mid-job. The generation and its engine are captured
// under one lock, so they always agree.
func (r *Registry) Acquire(name string) (*Handle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	entry, ok := r.graphs[name]
	if !ok {
		return nil, fmt.Errorf("server: graph %q not registered", name)
	}
	entry.refs++
	entry.cur.Retain()
	return &Handle{r: r, entry: entry, g: entry.cur, engine: entry.engine}, nil
}

// MutateResult reports one applied batch: the per-op counters from the
// graph layer plus the new generation's shape.
type MutateResult struct {
	// Version is the new generation's version; AddedNodes lists the
	// NodeIDs assigned to the batch's AddNode ops in op order.
	Version    uint64         `json:"version"`
	AddedNodes []graph.NodeID `json:"addedNodes,omitempty"`
	// NodesRemoved / EdgesAdded / EdgesRemoved count the batch's net
	// effect (EdgesRemoved includes RemoveNode cascades); Ops echoes the
	// batch length.
	NodesRemoved int `json:"nodesRemoved"`
	EdgesAdded   int `json:"edgesAdded"`
	EdgesRemoved int `json:"edgesRemoved"`
	Ops          int `json:"ops"`
	// Nodes and Edges are the live counts after the batch.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// Compacting reports that this batch crossed the compaction threshold
	// and a background checkpoint was kicked off.
	Compacting bool `json:"compacting,omitempty"`
}

// Mutate applies one mutation batch to a registered graph: the batch is
// validated and merged into a new frozen generation (all-or-nothing; see
// graph.ApplyBatch), appended to the graph's delta log (fsync'd — after
// Mutate returns, a crash replays it), and a fresh engine over the new
// generation — sharing the previous engine's caches — starts serving
// subsequent Acquires. In-flight jobs keep the generation they leased.
func (r *Registry) Mutate(name string, ops []graph.Mutation) (*MutateResult, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("server: empty mutation batch for graph %q", name)
	}
	r.mu.Lock()
	entry, ok := r.graphs[name]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("server: graph %q not registered", name)
	}
	entry.mutMu.Lock()
	defer entry.mutMu.Unlock()
	r.mu.Lock()
	removed := entry.removed
	r.mu.Unlock()
	if removed {
		return nil, fmt.Errorf("server: graph %q not registered", name)
	}

	res, err := entry.live.Apply(ops)
	if err != nil {
		r.muts.rejected.Add(1)
		return nil, err
	}
	r.muts.batches.Add(1)
	r.muts.ops.Add(int64(len(ops)))
	entry.mutOps.Add(int64(len(ops)))

	// Persist before the new generation becomes visible to new leases:
	// once a client sees post-batch results, a crash must not roll the
	// graph back past the batch. Log-write failures are counted and
	// logged, not returned — the in-memory graph has already advanced.
	if entry.wal == nil && r.snaps != nil {
		w, werr := graph.OpenWAL(r.snaps.walPath(name))
		if werr != nil {
			r.snaps.wal.appendFails.Add(1)
			r.snaps.logf("delta log open %s: %v (batch not persisted)", name, werr)
		} else {
			if w.Epoch() != entry.epoch.Load() {
				// A fresh log starts at epoch 0; align it with the entry's
				// base snapshot so restore resolves the right file.
				if rerr := w.ResetEpoch(entry.epoch.Load()); rerr != nil {
					r.snaps.logf("delta log %s: set epoch: %v", name, rerr)
				}
			}
			entry.wal = w
		}
	}
	if entry.wal != nil {
		if werr := entry.wal.Append(ops); werr != nil {
			r.snaps.wal.appendFails.Add(1)
			r.snaps.logf("delta log append %s: %v (batch not persisted)", name, werr)
		} else {
			r.snaps.wal.appends.Add(1)
		}
	}

	ng := entry.live.Acquire()
	r.swapServed(entry, ng)

	out := &MutateResult{
		Version:      res.Version,
		AddedNodes:   res.AddedNodes,
		NodesRemoved: res.NodesRemoved,
		EdgesAdded:   res.EdgesAdded,
		EdgesRemoved: res.EdgesRemoved,
		Ops:          res.Ops,
		Nodes:        ng.NumLive(),
		Edges:        ng.NumEdges(),
	}
	if r.compactAfter > 0 && entry.live.OpsSinceCompact() >= r.compactAfter && !entry.compacting {
		entry.compacting = true
		out.Compacting = true
		go r.checkpoint(entry)
	}
	if r.onMutate != nil {
		r.onMutate(name, ops, res)
	}
	return out, nil
}

// swapServed makes g (a retained generation, ownership transferred) the
// entry's served generation, with a fresh engine around the previous
// engine's caches; the replaced generation's reference is released and
// the replaced engine's matcher counters are folded into retired.
func (r *Registry) swapServed(entry *graphEntry, g *graph.Graph) {
	ne := r.newEngine(g, entry.engine)
	r.mu.Lock()
	old, oldEngine := entry.cur, entry.engine
	entry.cur, entry.engine = g, ne
	foldEngineStats(&entry.retired, oldEngine.Stats())
	r.mu.Unlock()
	if err := old.Close(); err != nil && r.snaps != nil {
		r.snaps.logf("snapshot unmap %s: %v", entry.name, err)
	}
}

// foldEngineStats adds s's matcher counters into dst. Cache and distance
// stats are deliberately excluded: successive engines share those caches,
// so the live engine already reports the cumulative numbers.
func foldEngineStats(dst *match.EngineStats, s match.EngineStats) {
	dst.ParEvals += s.ParEvals
	dst.Evals += s.Evals
	dst.CandidatesChecked += s.CandidatesChecked
	dst.BacktrackNodes += s.BacktrackNodes
	dst.IndexSelections += s.IndexSelections
	dst.ScanSelections += s.ScanSelections
	dst.SigPruned += s.SigPruned
}

// Checkpoint synchronously compacts a graph and persists the result: the
// accumulated copy-on-write generations re-freeze into a canonical layout
// (cache coordinates preserved, so the shared caches stay warm), the
// resurrected image is written as the next-epoch snapshot, and the delta
// log atomically resets to that epoch with just the tombstone batch.
// Restores then replay a short log over the fresh snapshot instead of the
// graph's whole mutation history.
func (r *Registry) Checkpoint(name string) error {
	r.mu.Lock()
	entry, ok := r.graphs[name]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: graph %q not registered", name)
	}
	r.checkpoint(entry)
	return nil
}

func (r *Registry) checkpoint(entry *graphEntry) {
	entry.mutMu.Lock()
	defer entry.mutMu.Unlock()
	defer func() { entry.compacting = false }()
	r.mu.Lock()
	removed := entry.removed
	r.mu.Unlock()
	if removed {
		return
	}
	compacted, resurrected := entry.live.Compact()
	r.muts.compactions.Add(1)

	// The compacted generation replaces the served one; its identity (and
	// therefore every cache key) is unchanged, so the handed-over caches
	// keep hitting. The mapped base, if any, is released once outstanding
	// leases drain — move the mappedBytes charge off it now.
	ng := entry.live.Acquire()
	r.swapServed(entry, ng)
	if r.snaps != nil && entry.base != ng {
		r.snaps.unmapped(entry.base)
		entry.base = ng
	}

	if r.snaps == nil || entry.wal == nil {
		return
	}
	// Crash-atomic checkpoint: write the next-epoch snapshot, then commit
	// by atomically swapping in a delta log carrying that epoch (see the
	// wal.go format notes). A crash on either side of the log rename
	// leaves a consistent (snapshot, log) pair; the loser file is swept as
	// an orphan on the next restore.
	oldEpoch := entry.epoch.Load()
	next := oldEpoch + 1
	if !r.snaps.saveEpoch(entry.name, next, resurrected) {
		r.muts.checkpointFails.Add(1)
		return
	}
	if err := entry.wal.ResetEpoch(next, graph.TombstoneBatch(compacted.Tombstones())); err != nil {
		r.muts.checkpointFails.Add(1)
		r.snaps.wal.resetFails.Add(1)
		r.snaps.logf("delta log reset %s: %v", entry.name, err)
		r.snaps.removeEpochFile(entry.name, next)
		return
	}
	r.snaps.wal.resets.Add(1)
	entry.epoch.Store(next)
	r.snaps.removeEpochFile(entry.name, oldEpoch)
	r.muts.checkpoints.Add(1)
}

// Remove unregisters a graph and deletes its snapshot, checkpoint and
// delta-log files, if any. Existing handles remain valid; the entry's
// memory — including any file mapping — is reclaimed once the last one
// releases.
func (r *Registry) Remove(name string) error {
	r.putMu.Lock()
	defer r.putMu.Unlock()
	r.mu.Lock()
	entry, ok := r.graphs[name]
	if ok {
		entry.removed = true
		delete(r.graphs, name)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: graph %q not registered", name)
	}
	r.dropEntry(entry)
	if r.snaps != nil {
		r.snaps.remove(name)
		r.snaps.clearDerived(name)
	}
	return nil
}

// dropEntry releases the registry's own references for an entry already
// unlinked from the map (outstanding handles keep theirs), waiting out
// any in-flight mutation or checkpoint first.
func (r *Registry) dropEntry(entry *graphEntry) {
	entry.mutMu.Lock()
	if entry.wal != nil {
		entry.wal.Close()
		entry.wal = nil
	}
	entry.mutMu.Unlock()
	if r.snaps != nil {
		r.snaps.unmapped(entry.base)
	}
	if err := entry.cur.Close(); err != nil && r.snaps != nil {
		r.snaps.logf("snapshot unmap %s: %v", entry.name, err)
	}
	if err := entry.live.Close(); err != nil && r.snaps != nil {
		r.snaps.logf("snapshot unmap %s: %v", entry.name, err)
	}
}

// closeAll unregisters every graph and drops the registry's references,
// for server shutdown after the job manager has drained; snapshot and
// delta-log files stay on disk for the next warm start.
func (r *Registry) closeAll() {
	r.putMu.Lock()
	defer r.putMu.Unlock()
	r.mu.Lock()
	entries := make([]*graphEntry, 0, len(r.graphs))
	for name, e := range r.graphs {
		e.removed = true
		entries = append(entries, e)
		delete(r.graphs, name)
	}
	r.mu.Unlock()
	for _, e := range entries {
		r.dropEntry(e)
	}
}

// Info returns one graph's summary.
func (r *Registry) Info(name string) (GraphInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	entry, ok := r.graphs[name]
	if !ok {
		return GraphInfo{}, false
	}
	return infoOf(entry), true
}

// List returns every registered graph's summary, sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	infos := make([]GraphInfo, 0, len(r.graphs))
	for _, e := range r.graphs {
		infos = append(infos, infoOf(e))
	}
	r.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// infoOf renders an entry's summary; the caller holds r.mu.
func infoOf(e *graphEntry) GraphInfo {
	st := e.engine.Stats()
	foldEngineStats(&st, e.retired)
	return GraphInfo{
		Name:            e.name,
		Nodes:           e.cur.NumLive(),
		Edges:           e.cur.NumEdges(),
		Refs:            e.refs,
		LoadedAt:        e.loadedAt,
		Version:         e.cur.Version(),
		Mutations:       e.mutOps.Load(),
		ReplayedBatches: e.replayed,
		Epoch:           e.epoch.Load(),
		Memory:          e.cur.Memory(),
		Engine:          st,
	}
}
