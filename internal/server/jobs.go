package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"fairsqg/internal/cluster"
	"fairsqg/internal/core"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull sheds load when the job queue is at capacity (429).
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining rejects submissions during graceful shutdown (503).
	ErrDraining = errors.New("server: shutting down")
	// ErrUnknownGraph rejects jobs naming an unregistered graph (404).
	ErrUnknownGraph = errors.New("server: unknown graph")
)

// runFunc executes one job under its deadline context, publishing
// progress into the hub; tests inject their own.
type runFunc func(ctx context.Context, hub *progressHub) (*JobResult, error)

// Job is one asynchronous generation run.
type Job struct {
	// Immutable after creation.
	ID        string
	spec      *JobSpec
	handle    *Handle
	hub       *progressHub
	run       runFunc
	timeout   time.Duration
	submitted time.Time

	// Guarded by the manager's mutex.
	state           JobState
	started         time.Time
	finished        time.Time
	errMsg          string
	result          *JobResult
	cancel          context.CancelFunc
	cancelRequested bool
}

// JobStatus is a job's externally visible summary.
type JobStatus struct {
	ID        string     `json:"id"`
	State     JobState   `json:"state"`
	Graph     string     `json:"graph,omitempty"`
	Algorithm string     `json:"algorithm,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	// Queries is the result-set size, present once done.
	Queries int `json:"queries,omitempty"`
}

// ManagerOptions tunes the job manager.
type ManagerOptions struct {
	// Workers is the number of concurrent job runners (default 2).
	Workers int
	// QueueDepth bounds the jobs waiting to start; submissions beyond it
	// are shed with ErrQueueFull (default 16).
	QueueDepth int
	// Retention keeps finished jobs visible before GC (default 15m).
	Retention time.Duration
	// DefaultTimeout bounds jobs that don't pick one (default 5m);
	// MaxTimeout caps what a job may ask for (default 30m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// GCInterval paces the retention sweep (default 30s).
	GCInterval time.Duration
	// EventBuffer sizes each job's progress ring (default 1024).
	EventBuffer int
}

func (o *ManagerOptions) withDefaults() ManagerOptions {
	out := *o
	if out.Workers <= 0 {
		out.Workers = 2
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 16
	}
	if out.Retention <= 0 {
		out.Retention = 15 * time.Minute
	}
	if out.DefaultTimeout <= 0 {
		out.DefaultTimeout = 5 * time.Minute
	}
	if out.MaxTimeout <= 0 {
		out.MaxTimeout = 30 * time.Minute
	}
	if out.GCInterval <= 0 {
		out.GCInterval = 30 * time.Second
	}
	if out.EventBuffer <= 0 {
		out.EventBuffer = 1024
	}
	return out
}

// Manager owns the job lifecycle: a bounded intake queue, a fixed worker
// pool running jobs under per-job deadlines, retention/GC of finished
// jobs, and graceful draining.
type Manager struct {
	opts ManagerOptions
	reg  *Registry
	met  *metrics
	// disableIncScore propagates the server-level scoring ablation into
	// every job's configuration (see Options.DisableIncScore).
	disableIncScore bool
	// cluster, when set, runs par jobs distributed over the worker fleet
	// instead of the local lattice walk (see Options.Cluster).
	cluster *cluster.Coordinator

	mu       sync.Mutex
	jobs     map[string]*Job
	seq      int
	draining bool

	queue  chan *Job
	wg     sync.WaitGroup
	stopGC chan struct{}
	gcDone chan struct{}
}

// NewManager starts the worker pool and the GC sweeper.
func NewManager(reg *Registry, met *metrics, opts ManagerOptions) *Manager {
	o := opts.withDefaults()
	m := &Manager{
		opts:   o,
		reg:    reg,
		met:    met,
		jobs:   make(map[string]*Job),
		queue:  make(chan *Job, o.QueueDepth),
		stopGC: make(chan struct{}),
		gcDone: make(chan struct{}),
	}
	for i := 0; i < o.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	go m.gcLoop()
	return m
}

// Submit validates a spec, leases its graph and enqueues the job. The
// expensive work happens later on a worker; validation errors surface
// here, synchronously.
func (m *Manager) Submit(spec *JobSpec) (*Job, error) {
	m.mu.Lock()
	draining := m.draining
	m.mu.Unlock()
	if draining {
		// Rechecked under the lock in enqueue; the early exit just avoids
		// validating work that can't be accepted.
		return nil, ErrDraining
	}
	handle, err := m.reg.Acquire(spec.Graph)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, spec.Graph)
	}
	cfg, err := buildConfig(spec, handle)
	if err != nil {
		handle.Release()
		return nil, err
	}
	cfg.DisableIncScore = m.disableIncScore
	every := spec.ProgressEvery
	if every == 0 {
		every = 32
	}
	var run runFunc
	if m.cluster != nil && spec.Algorithm == "par" {
		// Coordinator mode: par jobs fan out over the worker fleet. The
		// config built above already validated the spec; workers rebuild it
		// from the payload against their content-addressed graph copies.
		run = func(ctx context.Context, hub *progressHub) (*JobResult, error) {
			return m.runDistributed(ctx, spec, handle, hub)
		}
	} else {
		run = func(ctx context.Context, hub *progressHub) (*JobResult, error) {
			cfg.Ctx = ctx
			var hook func(core.VerifyEvent)
			if every > 0 {
				hook = func(ev core.VerifyEvent) {
					if ev.Seq != 1 && ev.Seq%every != 0 {
						return
					}
					hub.publish(JobEvent{
						Type: "progress", Verified: ev.Seq, Feasible: ev.Feasible,
						Matches: ev.Matches, Div: ev.Point.Div, Cov: ev.Point.Cov,
					})
				}
			}
			return runSpec(spec, cfg, hook)
		}
	}
	timeout := m.opts.DefaultTimeout
	if spec.TimeoutMs > 0 {
		timeout = time.Duration(spec.TimeoutMs) * time.Millisecond
	}
	if timeout > m.opts.MaxTimeout {
		timeout = m.opts.MaxTimeout
	}
	job, err := m.enqueue(spec, handle, run, timeout)
	if err != nil {
		handle.Release()
		return nil, err
	}
	return job, nil
}

// enqueue registers the job and offers it to the queue without blocking.
func (m *Manager) enqueue(spec *JobSpec, handle *Handle, run runFunc, timeout time.Duration) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	m.seq++
	job := &Job{
		ID:        fmt.Sprintf("j%06d", m.seq),
		spec:      spec,
		handle:    handle,
		hub:       newProgressHub(m.opts.EventBuffer),
		run:       run,
		timeout:   timeout,
		submitted: time.Now(),
		state:     JobQueued,
	}
	select {
	case m.queue <- job:
	default:
		m.met.jobsShed.Add(1)
		return nil, ErrQueueFull
	}
	m.jobs[job.ID] = job
	m.met.jobsSubmitted.Add(1)
	return job, nil
}

// worker drains the queue until it closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.runJob(job)
	}
}

// runJob executes one job under its deadline and records the outcome.
func (m *Manager) runJob(job *Job) {
	m.mu.Lock()
	if job.state.terminal() {
		// Cancelled while still queued; nothing to run.
		m.mu.Unlock()
		return
	}
	if job.cancelRequested {
		m.finishLocked(job, JobCancelled, nil, "cancelled before start")
		m.mu.Unlock()
		return
	}
	// The ID rides the context so run closures built before the ID existed
	// (Submit runs before enqueue assigns it) can still correlate logs.
	ctx, cancel := context.WithTimeout(context.WithValue(context.Background(), ctxJobID{}, job.ID), job.timeout)
	job.cancel = cancel
	job.state = JobRunning
	job.started = time.Now()
	m.mu.Unlock()
	job.hub.publish(JobEvent{Type: "state", State: string(JobRunning)})

	result, err := job.run(ctx, job.hub)
	cancel()

	m.mu.Lock()
	switch {
	case err == nil:
		job.result = result
		m.finishLocked(job, JobDone, result, "")
	case job.cancelRequested || errors.Is(err, context.Canceled):
		m.finishLocked(job, JobCancelled, nil, "cancelled")
	case errors.Is(err, context.DeadlineExceeded):
		m.finishLocked(job, JobFailed, nil, fmt.Sprintf("deadline exceeded after %v", job.timeout))
	default:
		m.finishLocked(job, JobFailed, nil, err.Error())
	}
	m.mu.Unlock()
}

// finishLocked transitions a job to a terminal state: counters, the
// graph lease, and the progress stream are all settled here. Caller
// holds m.mu.
func (m *Manager) finishLocked(job *Job, state JobState, result *JobResult, errMsg string) {
	job.state = state
	job.errMsg = errMsg
	job.finished = time.Now()
	job.cancel = nil
	if job.handle != nil {
		job.handle.Release()
	}
	switch state {
	case JobDone:
		m.met.jobsDone.Add(1)
		if job.spec != nil && !job.started.IsZero() {
			m.met.observeLatency(job.spec.Algorithm, float64(job.finished.Sub(job.started))/float64(time.Millisecond))
		}
	case JobFailed:
		m.met.jobsFailed.Add(1)
	case JobCancelled:
		m.met.jobsCancelled.Add(1)
	}
	ev := JobEvent{Type: "state", State: string(state), Error: errMsg}
	if result != nil {
		ev.Matches = len(result.Queries)
	}
	job.hub.publish(ev)
	job.hub.close()
}

// Cancel requests cancellation: a queued job finishes immediately, a
// running one has its context cancelled and finishes when the runner
// notices. Cancelling a finished or unknown job is an error.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("server: no job %q", id)
	}
	if job.state.terminal() {
		return fmt.Errorf("server: job %q already %s", id, job.state)
	}
	job.cancelRequested = true
	if job.state == JobQueued {
		m.finishLocked(job, JobCancelled, nil, "cancelled while queued")
		return nil
	}
	if job.cancel != nil {
		job.cancel()
	}
	return nil
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	return job, ok
}

// Status snapshots a job's summary.
func (m *Manager) Status(id string) (JobStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return m.statusLocked(job), true
}

func (m *Manager) statusLocked(job *Job) JobStatus {
	st := JobStatus{
		ID:        job.ID,
		State:     job.state,
		Submitted: job.submitted,
		Error:     job.errMsg,
	}
	if job.spec != nil {
		st.Graph = job.spec.Graph
		st.Algorithm = job.spec.Algorithm
	}
	if !job.started.IsZero() {
		t := job.started
		st.Started = &t
	}
	if !job.finished.IsZero() {
		t := job.finished
		st.Finished = &t
	}
	if job.result != nil {
		st.Queries = len(job.result.Queries)
	}
	return st
}

// Result returns a finished job's rendered result.
func (m *Manager) Result(id string) (*JobResult, JobState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return nil, "", false
	}
	return job.result, job.state, true
}

// Subscribe attaches to a job's progress stream.
func (m *Manager) Subscribe(id string) (replay []JobEvent, live <-chan JobEvent, cancel func(), ok bool) {
	m.mu.Lock()
	job, found := m.jobs[id]
	m.mu.Unlock()
	if !found {
		return nil, nil, nil, false
	}
	replay, live, cancel = job.hub.subscribe()
	return replay, live, cancel, true
}

// List snapshots every retained job, newest first.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.jobs))
	for _, job := range m.jobs {
		out = append(out, m.statusLocked(job))
	}
	// Newest first: IDs are fixed-width and monotonic, so descending
	// lexicographic order is reverse submission order.
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

// counts tallies retained jobs by state plus the live queue depth.
func (m *Manager) counts() (byState map[JobState]int, queueDepth int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byState = map[JobState]int{}
	for _, job := range m.jobs {
		byState[job.state]++
	}
	return byState, len(m.queue)
}

// gcLoop sweeps expired finished jobs on a ticker until Shutdown.
func (m *Manager) gcLoop() {
	defer close(m.gcDone)
	t := time.NewTicker(m.opts.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.sweep(time.Now())
		case <-m.stopGC:
			return
		}
	}
}

// sweep drops finished jobs past retention; it returns how many went.
func (m *Manager) sweep(now time.Time) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for id, job := range m.jobs {
		if job.state.terminal() && now.Sub(job.finished) >= m.opts.Retention {
			delete(m.jobs, id)
			n++
		}
	}
	return n
}

// Shutdown stops intake and drains: queued and running jobs complete
// normally if they can. When ctx expires first, every remaining job's
// context is cancelled and Shutdown returns ctx.Err() once the workers
// settle.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	close(m.queue)
	m.mu.Unlock()
	close(m.stopGC)

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		m.mu.Lock()
		for _, job := range m.jobs {
			if !job.state.terminal() {
				job.cancelRequested = true
				if job.cancel != nil {
					job.cancel()
				}
			}
		}
		m.mu.Unlock()
		<-done
	}
	<-m.gcDone
	return err
}
