package measure

import "fairsqg/internal/graph"

// ProfileRelevance scores a match by its similarity to a reference
// attribute profile — a stand-in for the entity-linkage relevance the
// paper cites as an alternative r(u_o, ·). The score is 1 minus the
// normalized tuple distance between the node and the profile, so nodes
// matching the profile exactly score 1 and completely different nodes 0.
func ProfileRelevance(g *graph.Graph, profile map[string]graph.Value) RelevanceFunc {
	if len(profile) == 0 {
		return ConstantRelevance(1)
	}
	attrs := make([]string, 0, len(profile))
	for a := range profile {
		attrs = append(attrs, a)
	}
	spans := make(map[string]float64, len(attrs))
	for _, a := range attrs {
		lo, hi := 0.0, 0.0
		first := true
		for _, v := range g.ActiveDomain(a) {
			if v.Kind() != graph.KindNumber {
				continue
			}
			f := v.Float()
			if first {
				lo, hi, first = f, f, false
				continue
			}
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		if hi > lo {
			spans[a] = hi - lo
		} else {
			spans[a] = 1
		}
	}
	// Resolve attribute names to interned IDs once; the closure runs per
	// scored node.
	ids := make([]graph.AttrID, len(attrs))
	for i, a := range attrs {
		ids[i] = g.AttrIDOf(a)
	}
	return func(v graph.NodeID) float64 {
		total := 0.0
		for i, a := range attrs {
			total += attrDistance(g.AttrValue(v, ids[i]), profile[a], spans[a])
		}
		return 1 - total/float64(len(attrs))
	}
}

// CombinedRelevance averages several relevance functions — e.g. degree
// prestige blended with profile similarity.
func CombinedRelevance(fns ...RelevanceFunc) RelevanceFunc {
	if len(fns) == 0 {
		return ConstantRelevance(1)
	}
	return func(v graph.NodeID) float64 {
		total := 0.0
		for _, fn := range fns {
			total += fn(v)
		}
		return total / float64(len(fns))
	}
}
