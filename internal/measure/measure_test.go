package measure

import (
	"math"
	"testing"
	"testing/quick"

	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
		{"日本語", "日本", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Levenshtein(c.b, c.a); got != c.want {
			t.Errorf("Levenshtein not symmetric on (%q, %q)", c.a, c.b)
		}
	}
}

func TestNormalizedLevenshtein(t *testing.T) {
	if got := NormalizedLevenshtein("", ""); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := NormalizedLevenshtein("abc", "xyz"); got != 1 {
		t.Errorf("disjoint = %v", got)
	}
	f := func(a, b string) bool {
		d := NormalizedLevenshtein(a, b)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// measureGraph builds nodes with attributes for distance tests.
func measureGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	g.AddNode("P", map[string]graph.Value{"major": graph.Str("math"), "exp": graph.Int(0)})
	g.AddNode("P", map[string]graph.Value{"major": graph.Str("math"), "exp": graph.Int(10)})
	g.AddNode("P", map[string]graph.Value{"major": graph.Str("bio"), "exp": graph.Int(20)})
	g.AddNode("P", map[string]graph.Value{"major": graph.Str("art")}) // exp missing
	_ = g.AddEdge(0, 1, "knows")
	_ = g.AddEdge(2, 1, "knows")
	g.Freeze()
	return g
}

func TestTupleDistance(t *testing.T) {
	g := measureGraph(t)
	d := TupleDistance(g, []string{"major", "exp"})
	// Identical tuples.
	if got := d(0, 0); got != 0 {
		t.Errorf("d(0,0) = %v", got)
	}
	// Same major, exp differs by 10 of span 20 → (0 + 0.5)/2 = 0.25.
	if got := d(0, 1); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("d(0,1) = %v, want 0.25", got)
	}
	// Missing vs present numeric counts as 1.
	if got := d(0, 3); got <= 0.5 {
		t.Errorf("d(0,3) = %v, want > 0.5 (missing attr + different major)", got)
	}
	// Symmetry and range over all pairs.
	for i := graph.NodeID(0); i < 4; i++ {
		for j := graph.NodeID(0); j < 4; j++ {
			dij, dji := d(i, j), d(j, i)
			if dij != dji {
				t.Errorf("asymmetric d(%d,%d)", i, j)
			}
			if dij < 0 || dij > 1 {
				t.Errorf("d(%d,%d) = %v out of [0,1]", i, j, dij)
			}
		}
	}
}

func TestDegreeRelevance(t *testing.T) {
	g := measureGraph(t)
	r := DegreeRelevance(g, "P")
	// Node 1 has the max degree (2), so relevance 1.
	if got := r(1); got != 1 {
		t.Errorf("r(1) = %v", got)
	}
	if got := r(3); got != 0 {
		t.Errorf("r(3) = %v (isolated)", got)
	}
	// A label with no edges falls back to constant 1.
	g2 := graph.New()
	g2.AddNode("X", nil)
	g2.Freeze()
	if got := DegreeRelevance(g2, "X")(0); got != 1 {
		t.Errorf("isolated label relevance = %v", got)
	}
}

func TestDiversityEval(t *testing.T) {
	g := measureGraph(t)
	div := &Diversity{
		Lambda:          0.5,
		Relevance:       ConstantRelevance(1),
		Distance:        TupleDistance(g, []string{"major", "exp"}),
		LabelPopulation: 4,
	}
	// Empty set → 0.
	if got := div.Eval(nil); got != 0 {
		t.Errorf("δ(∅) = %v", got)
	}
	// Single match: only the relevance term, (1-λ)·1 = 0.5.
	if got := div.Eval([]graph.NodeID{0}); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("δ({0}) = %v, want 0.5", got)
	}
	// Two matches: (1-λ)·2 + 2λ/(4-1)·d(0,1) = 1 + (1/3)·0.25.
	want := 1 + 0.25/3
	if got := div.Eval([]graph.NodeID{0, 1}); math.Abs(got-want) > 1e-9 {
		t.Errorf("δ({0,1}) = %v, want %v", got, want)
	}
	// Bounded by |V_uo|.
	all := []graph.NodeID{0, 1, 2, 3}
	if got := div.Eval(all); got < 0 || got > div.MaxValue() {
		t.Errorf("δ(all) = %v outside [0, %v]", got, div.MaxValue())
	}
}

func TestDiversitySampling(t *testing.T) {
	// A larger uniform set: the sampled estimate must approximate the
	// exact pairwise sum.
	g := graph.New()
	for i := 0; i < 60; i++ {
		g.AddNode("P", map[string]graph.Value{"exp": graph.Int(int64(i % 7))})
	}
	g.Freeze()
	match := make([]graph.NodeID, 60)
	for i := range match {
		match[i] = graph.NodeID(i)
	}
	dist := TupleDistance(g, []string{"exp"})
	exact := &Diversity{Lambda: 1, Relevance: ConstantRelevance(0), Distance: dist, LabelPopulation: 60}
	sampled := &Diversity{Lambda: 1, Relevance: ConstantRelevance(0), Distance: dist, LabelPopulation: 60, MaxPairs: 400}
	e, s := exact.Eval(match), sampled.Eval(match)
	if e == 0 {
		t.Fatal("exact diversity is zero")
	}
	if rel := math.Abs(e-s) / e; rel > 0.15 {
		t.Errorf("sampled estimate off by %.0f%% (exact %v, sampled %v)", rel*100, e, s)
	}
	// Determinism.
	if s2 := sampled.Eval(match); s2 != s {
		t.Error("sampled diversity not deterministic")
	}
}

func TestCoverageAndFeasible(t *testing.T) {
	g := measureGraph(t)
	set := groups.Set{
		{Name: "math", Members: map[graph.NodeID]bool{0: true, 1: true}, Want: 1},
		{Name: "bio", Members: map[graph.NodeID]bool{2: true}, Want: 1},
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = g
	// Perfect coverage: one from each group → f = C = 2.
	if got := Coverage(set, []graph.NodeID{0, 2}); got != 2 {
		t.Errorf("f = %v, want 2", got)
	}
	// Over-coverage penalized: both math nodes + bio → |2-1| + 0 = 1 → f = 1.
	if got := Coverage(set, []graph.NodeID{0, 1, 2}); got != 1 {
		t.Errorf("f = %v, want 1", got)
	}
	// Under-coverage penalized and clamped at 0.
	if got := Coverage(set, nil); got != 0 {
		t.Errorf("f(∅) = %v, want 0 (C=2, penalty 2)", got)
	}
	if !Feasible(set, []graph.NodeID{0, 2}) {
		t.Error("exact coverage should be feasible")
	}
	if Feasible(set, []graph.NodeID{0}) {
		t.Error("missing bio should be infeasible")
	}
	// Nodes outside all groups don't count.
	if got := Coverage(set, []graph.NodeID{3}); got != 0 {
		t.Errorf("outside nodes counted: %v", got)
	}
	if CoverageMax(set) != 2 {
		t.Error("CoverageMax wrong")
	}
}

// TestCoverageRange: f ∈ [0, C] for arbitrary answers (property).
func TestCoverageRangeProperty(t *testing.T) {
	set := groups.Set{
		{Name: "a", Members: map[graph.NodeID]bool{0: true, 1: true, 2: true}, Want: 2},
		{Name: "b", Members: map[graph.NodeID]bool{3: true, 4: true}, Want: 1},
	}
	c := CoverageMax(set)
	f := func(mask uint8) bool {
		var ans []graph.NodeID
		for b := 0; b < 6; b++ {
			if mask&(1<<b) != 0 {
				ans = append(ans, graph.NodeID(b))
			}
		}
		got := Coverage(set, ans)
		return got >= 0 && got <= c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
