package measure

import (
	"math"
	"testing"

	"fairsqg/internal/graph"
)

func TestProfileRelevance(t *testing.T) {
	g := graph.New()
	exact := g.AddNode("P", map[string]graph.Value{"major": graph.Str("cs"), "exp": graph.Int(10)})
	near := g.AddNode("P", map[string]graph.Value{"major": graph.Str("cs"), "exp": graph.Int(5)})
	far := g.AddNode("P", map[string]graph.Value{"major": graph.Str("art"), "exp": graph.Int(0)})
	g.Freeze()
	r := ProfileRelevance(g, map[string]graph.Value{
		"major": graph.Str("cs"),
		"exp":   graph.Int(10),
	})
	re, rn, rf := r(exact), r(near), r(far)
	if math.Abs(re-1) > 1e-9 {
		t.Errorf("exact match relevance = %v, want 1", re)
	}
	if !(re > rn && rn > rf) {
		t.Errorf("relevance ordering broken: %v, %v, %v", re, rn, rf)
	}
	for _, v := range []float64{re, rn, rf} {
		if v < 0 || v > 1 {
			t.Errorf("relevance %v outside [0,1]", v)
		}
	}
	// Empty profile degrades to constant 1.
	if got := ProfileRelevance(g, nil)(far); got != 1 {
		t.Errorf("empty profile = %v", got)
	}
}

func TestCombinedRelevance(t *testing.T) {
	half := ConstantRelevance(0.5)
	one := ConstantRelevance(1)
	if got := CombinedRelevance(half, one)(0); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("combined = %v, want 0.75", got)
	}
	if got := CombinedRelevance()(0); got != 1 {
		t.Errorf("empty combination = %v", got)
	}
}
