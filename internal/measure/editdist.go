// Package measure implements the two FairSQG quality measures: the max-sum
// answer diversity δ(q, G) with pluggable relevance and pairwise-distance
// functions, and the group-coverage penalty f(q, P).
package measure

// Levenshtein returns the edit distance between a and b using a two-row
// dynamic program.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// NormalizedLevenshtein returns Levenshtein(a,b) divided by the longer
// length, in [0,1]; two empty strings have distance 0.
func NormalizedLevenshtein(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 0
	}
	return float64(Levenshtein(a, b)) / float64(m)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
