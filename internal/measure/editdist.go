// Package measure implements the two FairSQG quality measures: the max-sum
// answer diversity δ(q, G) with pluggable relevance and pairwise-distance
// functions, and the group-coverage penalty f(q, P).
package measure

import "sync"

// levScratch holds the two DP rows Levenshtein needs, pooled so the hot
// pairwise-distance loops don't allocate per call. Rune buffers are kept
// alongside for the non-ASCII path.
type levScratch struct {
	prev, cur []int
	ra, rb    []rune
}

var levPool = sync.Pool{New: func() any { return new(levScratch) }}

// rows returns the two scratch rows with capacity for n+1 cells.
func (s *levScratch) rows(n int) (prev, cur []int) {
	if cap(s.prev) < n+1 {
		s.prev = make([]int, n+1)
		s.cur = make([]int, n+1)
	}
	return s.prev[:n+1], s.cur[:n+1]
}

// isASCII reports whether s contains only single-byte runes, in which case
// the DP can run over raw bytes (same alignment, same distances).
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// Levenshtein returns the edit distance between a and b using a two-row
// dynamic program. Pure-ASCII inputs run over bytes; others decode to
// runes. Both paths share pooled scratch rows, so repeated calls — the
// pairwise diversity loops evaluate millions — do not allocate.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len([]rune(b))
	}
	if len(b) == 0 {
		return len([]rune(a))
	}
	s := levPool.Get().(*levScratch)
	var dist int
	if isASCII(a) && isASCII(b) {
		dist = levBytes(s, a, b)
	} else {
		s.ra, s.rb = s.ra[:0], s.rb[:0]
		for _, r := range a {
			s.ra = append(s.ra, r)
		}
		for _, r := range b {
			s.rb = append(s.rb, r)
		}
		dist = levRunes(s, s.ra, s.rb)
	}
	levPool.Put(s)
	return dist
}

func levBytes(s *levScratch, a, b string) int {
	prev, cur := s.rows(len(b))
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func levRunes(s *levScratch, ra, rb []rune) int {
	prev, cur := s.rows(len(rb))
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		ca := ra[i-1]
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ca == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// NormalizedLevenshtein returns Levenshtein(a,b) divided by the longer
// length, in [0,1]; two empty strings have distance 0.
func NormalizedLevenshtein(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 0
	}
	return float64(Levenshtein(a, b)) / float64(m)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
