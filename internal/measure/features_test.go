package measure

import (
	"fmt"
	"math/rand"
	"testing"

	"fairsqg/internal/graph"
)

// referenceTupleDistance is the pre-compilation evaluation: per-pair
// AttrValue reads fed through the attrDistance oracle. DistanceFeatures
// must reproduce it bit-for-bit.
func referenceTupleDistance(g *graph.Graph, attrs []string) DistanceFunc {
	spans := make([]float64, len(attrs))
	ids := make([]graph.AttrID, len(attrs))
	for i, a := range attrs {
		spans[i] = domainSpan(g, a)
		ids[i] = g.AttrIDOf(a)
	}
	return func(v, w graph.NodeID) float64 {
		total := 0.0
		for i := range attrs {
			var av, wv graph.Value
			if ids[i] != graph.InvalidAttr {
				av = g.AttrValue(v, ids[i])
				wv = g.AttrValue(w, ids[i])
			}
			total += attrDistance(av, wv, spans[i])
		}
		return total / float64(len(attrs))
	}
}

// featGraph exercises every feature-column code path: a small string
// domain (precomputed Levenshtein matrix), a large string domain (> 64
// values, on-demand Levenshtein), numbers, bools, non-ASCII strings, and
// missing values of each kind.
func featGraph(t testing.TB, n int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	small := []string{"alpha", "beta", "gamma", "日本語", "delta"}
	g := graph.New()
	for i := 0; i < n; i++ {
		attrs := map[string]graph.Value{}
		if rng.Float64() < 0.85 {
			attrs["cat"] = graph.Str(small[rng.Intn(len(small))])
		}
		if rng.Float64() < 0.85 {
			attrs["name"] = graph.Str(fmt.Sprintf("node-%03d-%c", rng.Intn(200), 'a'+rune(rng.Intn(26))))
		}
		if rng.Float64() < 0.85 {
			attrs["score"] = graph.Num(rng.Float64() * 40)
		}
		if rng.Float64() < 0.85 {
			attrs["active"] = graph.Bool(rng.Intn(2) == 0)
		}
		if rng.Float64() < 0.2 { // mixed-kind attribute: sometimes string, sometimes number
			attrs["mixed"] = graph.Str("x")
		} else if rng.Float64() < 0.5 {
			attrs["mixed"] = graph.Int(int64(rng.Intn(3)))
		}
		g.AddNode("P", attrs)
	}
	g.Freeze()
	return g
}

// TestDistanceFeaturesDifferential pins the compiled feature rows to the
// reference AttrValue evaluation over every pair of a mixed graph.
func TestDistanceFeaturesDifferential(t *testing.T) {
	attrs := []string{"cat", "name", "score", "active", "mixed"}
	for _, seed := range []int64{1, 2, 3} {
		g := featGraph(t, 60, seed)
		want := referenceTupleDistance(g, attrs)
		feats := NewDistanceFeatures(g, attrs)
		got := feats.Func()
		n := graph.NodeID(int32(g.NumNodes()))
		for v := graph.NodeID(0); v < n; v++ {
			for w := graph.NodeID(0); w < n; w++ {
				if gd, wd := got(v, w), want(v, w); gd != wd {
					t.Fatalf("seed %d: d(%d,%d) = %v, reference %v", seed, v, w, gd, wd)
				}
			}
		}
	}
}

func TestDistanceFeaturesLevMatrix(t *testing.T) {
	g := featGraph(t, 60, 4)
	feats := NewDistanceFeatures(g, []string{"cat", "name"})
	// cat has ≤ 5 distinct values → matrix; name has ~dozens of long-tail
	// values, likely > levMatrixCap → no matrix. Assert at least the small
	// domain compiled one (the observable contract — identical distances —
	// is covered by the differential test).
	if feats.cols[0].mat == nil && len(feats.cols[0].strs) > 1 {
		t.Error("small string domain did not precompile a Levenshtein matrix")
	}
	if len(feats.cols[1].strs) > levMatrixCap && feats.cols[1].mat != nil {
		t.Error("large string domain precompiled a matrix past the cap")
	}
}

func TestDistanceFeaturesUnknownAttr(t *testing.T) {
	g := featGraph(t, 10, 5)
	d := TupleDistance(g, []string{"no-such-attr"})
	if got := d(0, 1); got != 0 {
		t.Errorf("unknown attribute distance = %v, want 0 (all-null column)", got)
	}
}

func TestDistanceFeaturesFingerprint(t *testing.T) {
	g := featGraph(t, 10, 6)
	a := NewDistanceFeatures(g, []string{"cat", "score"})
	b := NewDistanceFeatures(g, []string{"cat", "score"})
	c := NewDistanceFeatures(g, []string{"score", "cat"})
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal attribute lists produced different fingerprints")
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different attribute orders share a fingerprint")
	}
}
