package measure

import (
	"math"
	"strings"

	"fairsqg/internal/graph"
)

// levMatrixCap bounds the interned-string domain size for which a feature
// column precomputes the full pairwise normalized-Levenshtein matrix.
// Categorical attributes (genders, titles, genres) have tiny domains, so
// the matrix turns every string comparison in the O(n²) pair loop into one
// array read; large free-text domains fall back to on-demand Levenshtein
// (which still benefits from the ASCII fast path and pooled scratch).
const levMatrixCap = 64

// featureCol is one distance attribute's per-node feature row: a kind tag
// per node plus typed payloads. Numbers keep their raw value (the span
// division happens per pair, bit-identical to the reference attrDistance);
// strings are interned to dense IDs so equal strings compare by ID and
// small domains resolve through the precomputed matrix; bools keep their
// 0/1 payload for the equality fallback.
type featureCol struct {
	span  float64
	kinds []uint8 // graph.Kind per node; KindNull when absent
	nums  []float64
	strID []int32
	strs  []string  // interned string table
	mat   []float64 // pairwise normalized Levenshtein; nil when |strs| > levMatrixCap
}

// DistanceFeatures holds precompiled per-node feature rows for the default
// tuple distance over a frozen graph: one featureCol per distance
// attribute, materialized straight from the columnar storage at
// construction. The per-pair evaluation touches only these dense arrays —
// no AttrValue lookups, no rune decoding — and is read-only afterwards, so
// one DistanceFeatures value may back any number of concurrent evaluators.
type DistanceFeatures struct {
	attrs []string
	cols  []featureCol
}

// NewDistanceFeatures compiles feature rows for the listed attributes (nil
// or empty means every attribute of g). The graph must be frozen.
func NewDistanceFeatures(g *graph.Graph, attrs []string) *DistanceFeatures {
	if len(attrs) == 0 {
		attrs = g.AttrNames()
	}
	n := g.NumNodes()
	f := &DistanceFeatures{
		attrs: append([]string(nil), attrs...),
		cols:  make([]featureCol, len(attrs)),
	}
	for i, name := range attrs {
		c := &f.cols[i]
		c.span = domainSpan(g, name)
		c.kinds = make([]uint8, n)
		id := g.AttrIDOf(name)
		if id == graph.InvalidAttr {
			continue // every node reads Null: zero contribution, like the reference
		}
		interned := map[string]int32{}
		for v := 0; v < n; v++ {
			val := g.AttrValue(graph.NodeID(v), id)
			kind := val.Kind()
			c.kinds[v] = uint8(kind)
			switch kind {
			case graph.KindNumber, graph.KindBool:
				if c.nums == nil {
					c.nums = make([]float64, n)
				}
				c.nums[v] = val.Float()
			case graph.KindString:
				if c.strID == nil {
					c.strID = make([]int32, n)
				}
				s := val.Text()
				sid, ok := interned[s]
				if !ok {
					sid = int32(len(c.strs))
					c.strs = append(c.strs, s)
					interned[s] = sid
				}
				c.strID[v] = sid
			}
		}
		if m := len(c.strs); m > 1 && m <= levMatrixCap {
			c.mat = make([]float64, m*m)
			for a := 0; a < m; a++ {
				for b := a + 1; b < m; b++ {
					d := NormalizedLevenshtein(c.strs[a], c.strs[b])
					c.mat[a*m+b] = d
					c.mat[b*m+a] = d
				}
			}
		}
	}
	return f
}

// domainSpan computes the numeric active-domain span exactly like the
// original TupleDistance closure did: max − min over the attribute's
// numeric values, or 1 when fewer than two distinct numbers occur.
func domainSpan(g *graph.Graph, attr string) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range g.ActiveDomain(attr) {
		if v.Kind() == graph.KindNumber {
			f := v.Float()
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
	}
	if hi > lo {
		return hi - lo
	}
	return 1
}

// Attrs returns the resolved attribute list the features cover.
func (f *DistanceFeatures) Attrs() []string { return f.attrs }

// Fingerprint canonically identifies the distance configuration; two
// DistanceFeatures over the same graph with equal fingerprints compute the
// same function, which is what lets an engine-owned pair cache be shared
// across jobs whose specs name the same distance attributes.
func (f *DistanceFeatures) Fingerprint() string {
	return "tuple\x00" + strings.Join(f.attrs, "\x00")
}

// Distance evaluates the tuple distance d(v, w) from the feature rows. The
// result is bit-identical to the reference per-pair attrDistance over
// AttrValue reads: the same null/number/string/fallback case analysis, the
// same span division and clamp, the same Levenshtein values.
func (f *DistanceFeatures) Distance(v, w graph.NodeID) float64 {
	if len(f.cols) == 0 {
		return 0
	}
	total := 0.0
	for i := range f.cols {
		c := &f.cols[i]
		ka, kb := graph.Kind(c.kinds[v]), graph.Kind(c.kinds[w])
		switch {
		case ka == graph.KindNull && kb == graph.KindNull:
			// both absent: identical
		case ka == graph.KindNull || kb == graph.KindNull:
			total++
		case ka == graph.KindNumber && kb == graph.KindNumber:
			d := math.Abs(c.nums[v]-c.nums[w]) / c.span
			if d > 1 {
				d = 1
			}
			total += d
		case ka == graph.KindString && kb == graph.KindString:
			a, b := c.strID[v], c.strID[w]
			if a == b {
				break // equal strings: distance 0, no Levenshtein
			}
			if c.mat != nil {
				total += c.mat[int(a)*len(c.strs)+int(b)]
			} else {
				total += NormalizedLevenshtein(c.strs[a], c.strs[b])
			}
		default:
			// Mixed kinds never compare equal; two bools compare by payload.
			if ka != kb || c.nums[v] != c.nums[w] {
				total++
			}
		}
	}
	return total / float64(len(f.cols))
}

// Func adapts the features to the DistanceFunc interface.
func (f *DistanceFeatures) Func() DistanceFunc { return f.Distance }
