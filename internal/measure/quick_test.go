package measure

import (
	"testing"
	"testing/quick"
)

// TestQuickLevenshteinMetric: symmetry, identity and the triangle
// inequality — Levenshtein is a metric on strings.
func TestQuickLevenshteinMetric(t *testing.T) {
	shorten := func(s string) string {
		r := []rune(s)
		if len(r) > 12 {
			r = r[:12]
		}
		return string(r)
	}
	sym := func(a, b string) bool {
		a, b = shorten(a), shorten(b)
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(sym, &quick.Config{MaxCount: 500}); err != nil {
		t.Error("symmetry:", err)
	}
	ident := func(a string) bool {
		a = shorten(a)
		return Levenshtein(a, a) == 0
	}
	if err := quick.Check(ident, &quick.Config{MaxCount: 500}); err != nil {
		t.Error("identity:", err)
	}
	tri := func(a, b, c string) bool {
		a, b, c = shorten(a), shorten(b), shorten(c)
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(tri, &quick.Config{MaxCount: 500}); err != nil {
		t.Error("triangle:", err)
	}
}

// TestQuickLevenshteinBounds: |len(a)-len(b)| <= d <= max(len).
func TestQuickLevenshteinBounds(t *testing.T) {
	f := func(a, b string) bool {
		ra, rb := []rune(a), []rune(b)
		if len(ra) > 12 {
			ra = ra[:12]
		}
		if len(rb) > 12 {
			rb = rb[:12]
		}
		d := Levenshtein(string(ra), string(rb))
		lo := len(ra) - len(rb)
		if lo < 0 {
			lo = -lo
		}
		hi := len(ra)
		if len(rb) > hi {
			hi = len(rb)
		}
		return d >= lo && d <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
