package measure

import (
	"sync"

	"fairsqg/internal/graph"
)

// DefaultPairCacheSize is the pair-distance cache capacity (total entries
// across all scopes) used when a caller asks for a cache without choosing
// a size. At 16 bytes per entry this bounds the cache near 16 MiB.
const DefaultPairCacheSize = 1 << 20

// PairCacheStats reports pair-distance cache effectiveness.
type PairCacheStats struct {
	// Evals counts underlying distance-function evaluations (cache misses
	// compute and store; with the cache disabled every lookup evaluates).
	Evals int64 `json:"evals"`
	// Hits counts lookups answered from the cache.
	Hits int64 `json:"hits"`
	// Misses counts lookups that evaluated the distance function.
	Misses int64 `json:"misses"`
	// Clears counts whole-cache drops taken to stay within capacity.
	Clears int64 `json:"clears"`
	// Entries is the current number of memoized pairs.
	Entries int `json:"entries"`
}

// PairCache memoizes pairwise distances d(v, w) under packed uint64 keys.
// Entries are partitioned into scopes, one per distance configuration
// (canonicalized by DistanceFeatures.Fingerprint), because the same node
// pair has different distances under different attribute lists — an
// engine-owned cache outlives any single job, and two jobs may share
// entries only when their fingerprints agree.
//
// The cache is bounded by total entry count; on overflow every scope is
// dropped at once (clear-on-full). Distances are deterministic per scope,
// so rebuilding is only a matter of re-evaluation, and the flat clear
// keeps lookups a single map probe with no LRU bookkeeping on the hot
// path. Safe for concurrent use.
type PairCache struct {
	mu       sync.Mutex
	capacity int
	scopes   map[string]*PairScope
	entries  int
	evals    int64
	hits     int64
	misses   int64
	clears   int64
}

// PairScope is a view of a PairCache restricted to one distance
// configuration; obtain one from PairCache.Scope.
type PairScope struct {
	cache *PairCache
	key   string
	m     map[uint64]float64
}

// NewPairCache returns an empty cache holding at most capacity distances
// across all scopes; capacity <= 0 selects DefaultPairCacheSize.
func NewPairCache(capacity int) *PairCache {
	if capacity <= 0 {
		capacity = DefaultPairCacheSize
	}
	return &PairCache{capacity: capacity, scopes: make(map[string]*PairScope)}
}

// Scope returns the cache's view for one distance fingerprint, creating it
// on first use. Callers with equal fingerprints share entries.
func (c *PairCache) Scope(fingerprint string) *PairScope {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.scopes[fingerprint]
	if !ok {
		s = &PairScope{cache: c, key: fingerprint, m: make(map[uint64]float64)}
		c.scopes[fingerprint] = s
	}
	return s
}

// Stats returns a snapshot of the cache counters.
func (c *PairCache) Stats() PairCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PairCacheStats{
		Evals:   c.evals,
		Hits:    c.hits,
		Misses:  c.misses,
		Clears:  c.clears,
		Entries: c.entries,
	}
}

// Reset drops every scope's entries and zeroes the counters.
func (c *PairCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.scopes {
		s.m = make(map[uint64]float64)
	}
	c.entries = 0
	c.evals, c.hits, c.misses, c.clears = 0, 0, 0, 0
}

// pairKey packs an unordered node pair into one uint64; callers pass the
// canonical v < w orientation so (v,w) and (w,v) share an entry.
func pairKey(v, w graph.NodeID) uint64 {
	return uint64(uint32(v))<<32 | uint64(uint32(w))
}

// Wrap returns a DistanceFunc that consults the scope before evaluating
// fn, canonicalizing argument order (fn must be symmetric, as the tuple
// distance is). Within one cache lifetime every pair therefore resolves to
// a single stored value, which also pins impure or racy custom functions
// to a consistent answer.
func (s *PairScope) Wrap(fn DistanceFunc) DistanceFunc {
	c := s.cache
	return func(v, w graph.NodeID) float64 {
		if w < v {
			v, w = w, v
		}
		key := pairKey(v, w)
		c.mu.Lock()
		if d, ok := s.m[key]; ok {
			c.hits++
			c.mu.Unlock()
			return d
		}
		c.misses++
		c.evals++
		c.mu.Unlock()
		d := fn(v, w)
		c.mu.Lock()
		if _, ok := s.m[key]; !ok {
			if c.entries >= c.capacity {
				for _, sc := range c.scopes {
					sc.m = make(map[uint64]float64)
				}
				c.entries = 0
				c.clears++
			}
			s.m[key] = d
			c.entries++
		}
		c.mu.Unlock()
		return d
	}
}
