package measure

import (
	"math"
	"math/rand"
	"testing"

	"fairsqg/internal/graph"
)

// incGraph builds a deterministic mixed-attribute graph for the incremental
// scoring tests: string, numeric and occasionally-missing attributes so the
// distances are non-trivial and non-uniform.
func incGraph(t testing.TB, n int, seed int64) (*graph.Graph, []graph.NodeID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	majors := []string{"cs", "math", "bio", "econ", "art", "law", "med"}
	g := graph.New()
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		attrs := map[string]graph.Value{
			"major": graph.Str(majors[rng.Intn(len(majors))]),
		}
		if rng.Float64() < 0.9 { // some nodes miss the numeric attribute
			attrs["exp"] = graph.Int(int64(rng.Intn(25)))
		}
		ids[i] = g.AddNode("P", attrs)
	}
	g.Freeze()
	return g, ids
}

func incDiversity(g *graph.Graph, n, maxPairs int) *Diversity {
	return &Diversity{
		Lambda:          0.5,
		Relevance:       DegreeRelevance(g, "P"),
		Distance:        TupleDistance(g, []string{"major", "exp"}),
		LabelPopulation: n,
		MaxPairs:        maxPairs,
	}
}

// subsetOf removes the nodes at the given positions, keeping order.
func subsetOf(ids []graph.NodeID, dropEvery int) []graph.NodeID {
	var out []graph.NodeID
	for i, v := range ids {
		if dropEvery > 0 && i%dropEvery == 0 {
			continue
		}
		out = append(out, v)
	}
	return out
}

func TestPairUnits(t *testing.T) {
	cases := []struct {
		d    float64
		want int64
	}{
		{0, 0},
		{-0.5, 0},
		{math.NaN(), 0},
		{1, pairUnitOne},
		{1.5, pairUnitOne},
		{0.5, pairUnitOne / 2},
	}
	for _, c := range cases {
		if got := pairUnits(c.d); got != c.want {
			t.Errorf("pairUnits(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestEvalStateMatchesEval: the fixed-point exact path agrees with the
// float evaluator up to quantization (each pair perturbed by < 2⁻³¹).
func TestEvalStateMatchesEval(t *testing.T) {
	g, ids := incGraph(t, 80, 7)
	div := incDiversity(g, 80, 0)
	want := div.Eval(ids)
	got, st := div.EvalState(ids)
	if st == nil {
		t.Fatal("exact EvalState returned nil state")
	}
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("EvalState = %v, Eval = %v", got, want)
	}
	// Empty and singleton sets.
	if got, st := div.EvalState(nil); got != 0 || st == nil {
		t.Errorf("EvalState(∅) = %v, %v", got, st)
	}
	if got, _ := div.EvalState(ids[:1]); math.Abs(got-div.Eval(ids[:1])) > 1e-12 {
		t.Errorf("EvalState singleton = %v, want %v", got, div.Eval(ids[:1]))
	}
}

// TestEvalDeltaBitIdentical is the core promise: a child scored through the
// subset-delta path is bit-identical — same float64, same fixed-point pair
// sum — to scoring the child from scratch.
func TestEvalDeltaBitIdentical(t *testing.T) {
	g, ids := incGraph(t, 100, 11)
	div := incDiversity(g, 100, 0)
	_, parent := div.EvalState(ids)
	// dropEvery = 2 would remove exactly half the set, which the delta path
	// declines by design (see TestEvalDeltaRejections).
	for _, dropEvery := range []int{3, 4, 5, 10} {
		child := subsetOf(ids, dropEvery)
		wantScore, wantState := div.EvalState(child)
		gotScore, gotState, ok := div.EvalDelta(parent, child)
		if !ok {
			t.Fatalf("dropEvery=%d: delta path rejected a subset", dropEvery)
		}
		if gotScore != wantScore {
			t.Errorf("dropEvery=%d: delta score %v != exact %v", dropEvery, gotScore, wantScore)
		}
		if gotState.PairUnits() != wantState.PairUnits() {
			t.Errorf("dropEvery=%d: delta units %d != exact %d",
				dropEvery, gotState.PairUnits(), wantState.PairUnits())
		}
	}
}

// TestEvalDeltaChain walks a refinement chain, always scoring through the
// previous delta state, so grandchildren force the lazy contribution
// materialization; every link must stay bit-identical to from-scratch.
func TestEvalDeltaChain(t *testing.T) {
	g, ids := incGraph(t, 120, 13)
	div := incDiversity(g, 120, 0)
	_, state := div.EvalState(ids)
	cur := ids
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 6 && len(cur) > 10; step++ {
		// Drop a random ~15% of the surviving set.
		var child []graph.NodeID
		for _, v := range cur {
			if rng.Float64() < 0.15 {
				continue
			}
			child = append(child, v)
		}
		wantScore, wantState := div.EvalState(child)
		gotScore, gotState, ok := div.EvalDelta(state, child)
		if !ok {
			t.Fatalf("step %d: delta path rejected a subset", step)
		}
		if gotScore != wantScore || gotState.PairUnits() != wantState.PairUnits() {
			t.Fatalf("step %d: delta (%v, %d) != exact (%v, %d)",
				step, gotScore, gotState.PairUnits(), wantScore, wantState.PairUnits())
		}
		cur, state = child, gotState
	}
}

func TestEvalDeltaIdenticalSetSharesState(t *testing.T) {
	g, ids := incGraph(t, 40, 17)
	div := incDiversity(g, 40, 0)
	want, parent := div.EvalState(ids)
	got, st, ok := div.EvalDelta(parent, ids)
	if !ok || st != parent {
		t.Fatalf("identical set: ok=%v, state shared=%v", ok, st == parent)
	}
	if got != want {
		t.Errorf("identical set rescored to %v, want %v", got, want)
	}
}

func TestEvalDeltaRejections(t *testing.T) {
	g, ids := incGraph(t, 60, 19)
	div := incDiversity(g, 60, 0)
	_, parent := div.EvalState(ids)

	// Nil parent.
	if _, _, ok := div.EvalDelta(nil, ids[:10]); ok {
		t.Error("nil parent accepted")
	}
	// Not a subset: a node outside the parent's set.
	notSub := append(append([]graph.NodeID(nil), ids[:10]...), graph.NodeID(1e6))
	if _, _, ok := div.EvalDelta(parent, notSub); ok {
		t.Error("non-subset accepted")
	}
	// Superset (child longer than parent).
	_, small := div.EvalState(ids[:5])
	if _, _, ok := div.EvalDelta(small, ids[:10]); ok {
		t.Error("superset accepted")
	}
	// Removal of at least half the set falls back to recompute.
	if _, _, ok := div.EvalDelta(parent, ids[:len(ids)/4]); ok {
		t.Error("massive removal should reject the delta path")
	}
}

// TestEvalDeltaSamplingBoundary: a set over the MaxPairs cap must be
// sampled (nil state) and never feed the delta path; a set exactly at the
// cap stays exact.
func TestEvalDeltaSamplingBoundary(t *testing.T) {
	g, ids := incGraph(t, 50, 23)
	atCap := 50 * 49 / 2
	div := incDiversity(g, 50, atCap)
	if _, st := div.EvalState(ids); st == nil {
		t.Fatal("numPairs == MaxPairs should stay exact")
	}
	div.MaxPairs = atCap - 1
	score, st := div.EvalState(ids)
	if st != nil {
		t.Fatal("numPairs > MaxPairs should sample and return nil state")
	}
	if want := div.Eval(ids); score != want {
		t.Errorf("sampled EvalState = %v, want Eval's %v", score, want)
	}
}

// TestEvalDeltaCachedDistance: the delta path composed with a pair cache
// (the production wiring) stays bit-identical, and repeated evaluation hits
// the cache.
func TestEvalDeltaCachedDistance(t *testing.T) {
	g, ids := incGraph(t, 80, 29)
	cache := NewPairCache(0)
	feats := NewDistanceFeatures(g, []string{"major", "exp"})
	div := &Diversity{
		Lambda:          0.5,
		Relevance:       DegreeRelevance(g, "P"),
		Distance:        cache.Scope(feats.Fingerprint()).Wrap(feats.Func()),
		LabelPopulation: 80,
	}
	_, parent := div.EvalState(ids)
	child := subsetOf(ids, 4)
	wantScore, _ := div.EvalState(child)
	gotScore, _, ok := div.EvalDelta(parent, child)
	if !ok || gotScore != wantScore {
		t.Fatalf("cached delta: ok=%v got=%v want=%v", ok, gotScore, wantScore)
	}
	st := cache.Stats()
	if st.Hits == 0 || st.Evals != st.Misses {
		t.Errorf("cache stats inconsistent: %+v", st)
	}
}
