package measure

import (
	"sync"
	"testing"

	"fairsqg/internal/graph"
)

func TestPairCacheMemoizes(t *testing.T) {
	calls := 0
	base := func(v, w graph.NodeID) float64 {
		calls++
		return float64(v+w) / 100
	}
	c := NewPairCache(0)
	d := c.Scope("s").Wrap(base)

	if d(1, 2) != d(2, 1) {
		t.Error("orientation changed the value")
	}
	if calls != 1 {
		t.Errorf("symmetric pair evaluated %d times, want 1", calls)
	}
	d(1, 2)
	st := c.Stats()
	if st.Evals != 1 || st.Misses != 1 || st.Hits != 2 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 eval/miss, 2 hits, 1 entry", st)
	}

	c.Reset()
	if st := c.Stats(); st != (PairCacheStats{}) {
		t.Errorf("Reset left %+v", st)
	}
	d(1, 2)
	if calls != 2 {
		t.Error("Reset did not drop the entry")
	}
}

func TestPairCacheScopesAreIsolated(t *testing.T) {
	c := NewPairCache(0)
	d1 := c.Scope("a").Wrap(func(v, w graph.NodeID) float64 { return 0.25 })
	d2 := c.Scope("b").Wrap(func(v, w graph.NodeID) float64 { return 0.75 })
	if d1(3, 4) != 0.25 || d2(3, 4) != 0.75 {
		t.Error("scopes shared an entry across fingerprints")
	}
	// Same fingerprint → shared entries.
	d3 := c.Scope("a").Wrap(func(v, w graph.NodeID) float64 { return -1 })
	if d3(3, 4) != 0.25 {
		t.Error("equal fingerprints did not share the memoized value")
	}
}

func TestPairCacheClearOnFull(t *testing.T) {
	c := NewPairCache(2)
	d := c.Scope("s").Wrap(func(v, w graph.NodeID) float64 { return float64(v) })
	d(0, 1)
	d(0, 2)
	d(0, 3) // over capacity: everything is dropped, then this pair stored
	st := c.Stats()
	if st.Clears != 1 {
		t.Errorf("clears = %d, want 1", st.Clears)
	}
	if st.Entries != 1 {
		t.Errorf("entries after clear = %d, want 1", st.Entries)
	}
}

// TestPairCacheConcurrent drives one scope from many goroutines; the race
// detector validates the locking, the assertions validate coherence.
func TestPairCacheConcurrent(t *testing.T) {
	c := NewPairCache(0)
	d := c.Scope("s").Wrap(func(v, w graph.NodeID) float64 { return float64(v*31+w) / 1e6 })
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for v := graph.NodeID(0); v < 40; v++ {
				for w := v + 1; w < 40; w++ {
					if got, want := d(v, w), float64(v*31+w)/1e6; got != want {
						t.Errorf("d(%d,%d) = %v, want %v", v, w, got, want)
						return
					}
				}
			}
		}(k)
	}
	wg.Wait()
	if st := c.Stats(); st.Entries != 40*39/2 {
		t.Errorf("entries = %d, want %d", st.Entries, 40*39/2)
	}
}
