package measure

import (
	"math"
	"math/bits"

	"fairsqg/internal/graph"
)

// RelevanceFunc scores the relevance r(u_o, v) of a match in [0,1].
type RelevanceFunc func(v graph.NodeID) float64

// DistanceFunc scores the dissimilarity d(v, v') of two matches in [0,1].
type DistanceFunc func(v, w graph.NodeID) float64

// ConstantRelevance treats every match as equally relevant with score c.
func ConstantRelevance(c float64) RelevanceFunc {
	return func(graph.NodeID) float64 { return c }
}

// DegreeRelevance scores a match by its total degree normalized by the
// maximum degree observed among nodes with the given label — a stand-in for
// the social-impact relevance the paper cites. Returns a constant 1 scorer
// when the label has no edges.
func DegreeRelevance(g *graph.Graph, label string) RelevanceFunc {
	maxDeg := 0
	for _, v := range g.NodesByLabel(label) {
		if d := g.OutDegree(v) + g.InDegree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg == 0 {
		return ConstantRelevance(1)
	}
	md := float64(maxDeg)
	return func(v graph.NodeID) float64 {
		return float64(g.OutDegree(v)+g.InDegree(v)) / md
	}
}

// TupleDistance builds the paper's default pairwise distance: the
// normalized edit distance between the attribute tuples T(v) and T(v'),
// averaged over the listed attributes. String attributes use normalized
// Levenshtein distance; numeric attributes use |a-b| scaled by the
// attribute's active-domain span. Missing values count as maximally
// distant from present ones and identical to each other.
func TupleDistance(g *graph.Graph, attrs []string) DistanceFunc {
	return NewDistanceFeatures(g, attrs).Func()
}

// attrDistance is the reference per-attribute distance the feature rows
// compile down to; it is retained as the oracle for the differential test
// pinning DistanceFeatures to the straightforward AttrValue evaluation.
func attrDistance(a, b graph.Value, span float64) float64 {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull() || b.IsNull():
		return 1
	case a.Kind() == graph.KindNumber && b.Kind() == graph.KindNumber:
		d := math.Abs(a.Float()-b.Float()) / span
		if d > 1 {
			d = 1
		}
		return d
	case a.Kind() == graph.KindString && b.Kind() == graph.KindString:
		return NormalizedLevenshtein(a.Text(), b.Text())
	default:
		if a.Equal(b) {
			return 0
		}
		return 1
	}
}

// Diversity evaluates the max-sum diversity objective
//
//	δ(q, G) = (1−λ) Σ_{v∈q(G)} r(u_o, v) + 2λ/(|V_{u_o}|−1) Σ_{v<v'} d(v, v')
//
// over a match set. |V_{u_o}| is the population of the output label, which
// normalizes the pairwise term so that δ(q, G) ∈ [0, |V_{u_o}|].
type Diversity struct {
	// Lambda balances relevance (0) against dissimilarity (1).
	Lambda float64
	// Relevance is r(u_o, ·); required.
	Relevance RelevanceFunc
	// Distance is d(·,·); required.
	Distance DistanceFunc
	// LabelPopulation is |V_{u_o}|.
	LabelPopulation int
	// MaxPairs caps the number of pairwise distance evaluations per call.
	// When the match set induces more pairs, the pairwise sum is estimated
	// from a deterministic sample and scaled; 0 means always exact.
	MaxPairs int
}

// Eval computes δ for the given match set.
func (d *Diversity) Eval(matches []graph.NodeID) float64 {
	rel := 0.0
	for _, v := range matches {
		rel += d.Relevance(v)
	}
	n := len(matches)
	pairSum := 0.0
	numPairs := n * (n - 1) / 2
	if numPairs > 0 {
		if d.MaxPairs > 0 && numPairs > d.MaxPairs {
			pairSum = d.samplePairs(matches, numPairs)
		} else {
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					pairSum += d.Distance(matches[i], matches[j])
				}
			}
		}
	}
	norm := 0.0
	if d.LabelPopulation > 1 {
		norm = 2 * d.Lambda / float64(d.LabelPopulation-1)
	}
	return (1-d.Lambda)*rel + norm*pairSum
}

// samplePairs estimates the pairwise sum from MaxPairs deterministically
// chosen pairs (splitmix64 stream seeded by the set size) scaled to the
// full pair count. Determinism keeps benchmark runs reproducible. Indexes
// are drawn with Lemire's multiply-shift rejection, so every index is
// exactly uniform — the earlier next()%n draw was biased toward small
// indexes whenever n did not divide 2⁶⁴.
func (d *Diversity) samplePairs(matches []graph.NodeID, numPairs int) float64 {
	n := len(matches)
	state := uint64(n)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	sum := 0.0
	for k := 0; k < d.MaxPairs; k++ {
		i := int(boundedUint(next, uint64(n)))
		j := int(boundedUint(next, uint64(n-1)))
		if j >= i {
			j++
		}
		sum += d.Distance(matches[i], matches[j])
	}
	return sum / float64(d.MaxPairs) * float64(numPairs)
}

// boundedUint maps draws from next onto [0, n) without modulo bias using
// Lemire's multiply-shift reduction: the high 64 bits of draw·n are
// uniform once draws landing in the short first interval (low bits below
// 2⁶⁴ mod n) are rejected. The rejection loop consumes a deterministic
// number of extra draws for a given stream, preserving reproducibility.
func boundedUint(next func() uint64, n uint64) uint64 {
	hi, lo := bits.Mul64(next(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(next(), n)
		}
	}
	return hi
}

// MaxValue returns the upper bound of δ for this configuration, |V_{u_o}|,
// used to normalize indicators and size the ε-box grid.
func (d *Diversity) MaxValue() float64 { return float64(d.LabelPopulation) }
