package measure

import (
	"math"
	"testing"
)

// TestBoundedUintRange: every draw lands in [0, n), including awkward n.
func TestBoundedUintRange(t *testing.T) {
	state := uint64(42)
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for _, n := range []uint64{1, 2, 3, 7, 1 << 33, (1 << 63) + 5} {
		for k := 0; k < 1000; k++ {
			if got := boundedUint(next, n); got >= n {
				t.Fatalf("boundedUint(%d) = %d out of range", n, got)
			}
		}
	}
}

// TestBoundedUintUniform is the statistical regression for the modulo-bias
// fix: with Lemire reduction each residue of a small n is hit equally often
// (a biased next()%n over a narrow generator would visibly skew). The
// tolerance is ~5 standard deviations of the binomial count.
func TestBoundedUintUniform(t *testing.T) {
	state := uint64(7)
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	const n, draws = 5, 200000
	var counts [n]int
	for k := 0; k < draws; k++ {
		counts[boundedUint(next, n)]++
	}
	mean := float64(draws) / n
	tol := 5 * math.Sqrt(mean*(1-1.0/n))
	for r, c := range counts {
		if math.Abs(float64(c)-mean) > tol {
			t.Errorf("residue %d drawn %d times, want %.0f ± %.0f", r, c, mean, tol)
		}
	}
}

// TestSamplePairsDeterministic re-checks sampling determinism through the
// Lemire path (the estimate-accuracy check lives in TestDiversitySampling).
func TestSamplePairsDeterministic(t *testing.T) {
	g, ids := incGraph(t, 64, 3)
	div := incDiversity(g, 64, 100)
	a, b := div.Eval(ids), div.Eval(ids)
	if a != b {
		t.Errorf("sampled Eval not deterministic: %v vs %v", a, b)
	}
}
