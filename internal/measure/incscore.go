package measure

import (
	"math"

	"fairsqg/internal/graph"
)

// The incremental scorer accumulates pairwise distances in fixed-point
// units of 2⁻³⁰. Integer accumulation is exactly associative, so a child's
// pair sum derived by subtracting removed contributions is bit-identical
// to summing its pairs from scratch — float64 accumulation cannot promise
// that (addition order changes the rounding), and the differential tests
// demand exact equality between the exact and delta paths. Quantizing a
// distance to 2⁻³⁰ perturbs each pair by at most ~10⁻⁹, far below the
// ε-dominance tolerances the archives run with.
const (
	pairUnitBits = 30
	pairUnitOne  = int64(1) << pairUnitBits
	// maxUnitPairs bounds the exact fixed-point path: beyond 2³² pairs the
	// unit sum could overflow int64, so EvalState falls back to the float
	// evaluator (which at that scale is dominated by the pair loop anyway).
	maxUnitPairs = int64(1) << 32
)

// pairUnits quantizes a distance to fixed-point units. The DistanceFunc
// contract puts d in [0,1]; out-of-contract values (including NaN) are
// clamped so the integer arithmetic stays well defined.
func pairUnits(d float64) int64 {
	if !(d > 0) { // catches d <= 0 and NaN
		return 0
	}
	if d >= 1 {
		return pairUnitOne
	}
	return int64(math.Round(d * float64(pairUnitOne)))
}

// ScoreState carries the reusable part of one exact diversity evaluation:
// the scored match set, its pair sum, and (lazily) each node's pairwise
// contribution S(v) = Σ_w d(v,w), all in fixed-point units. A state
// produced for a parent instance lets every refinement child that shrinks
// the match set (Lemma 2 guarantees they all do) be re-scored from the
// difference instead of from scratch. States form a chain through base
// until their contributions are materialized; the zero value is not
// useful — obtain states from Diversity.EvalState or EvalDelta.
//
// A ScoreState is not safe for concurrent mutation: contribution
// materialization writes to the chain. Runners keep states private per
// goroutine (ParQGen workers never exchange parents across slabs).
type ScoreState struct {
	matches   []graph.NodeID
	pairUnits int64
	// contrib[i] is S(matches[i]) in units; nil until materialized.
	contrib []int64
	// base/removed record the delta this state was derived by, consumed
	// (and released) when contrib is materialized.
	base    *ScoreState
	removed []graph.NodeID
}

// PairUnits exposes the fixed-point pair sum for tests.
func (s *ScoreState) PairUnits() int64 { return s.pairUnits }

// relevanceSum accumulates r(v) in match order; delta evaluation recomputes
// it from scratch so the float sum is bit-identical to the exact path's.
func (d *Diversity) relevanceSum(matches []graph.NodeID) float64 {
	rel := 0.0
	for _, v := range matches {
		rel += d.Relevance(v)
	}
	return rel
}

// scoreUnits assembles δ from a relevance sum and a fixed-point pair sum.
func (d *Diversity) scoreUnits(rel float64, units int64) float64 {
	norm := 0.0
	if d.LabelPopulation > 1 {
		norm = 2 * d.Lambda / float64(d.LabelPopulation-1)
	}
	return (1-d.Lambda)*rel + norm*(float64(units)/float64(pairUnitOne))
}

// EvalState computes δ exactly and returns the reusable state backing
// subsequent EvalDelta calls. When the pair count exceeds MaxPairs (or the
// fixed-point overflow bound) it falls back to Eval's sampled/float path
// and returns a nil state: sampled scores are estimates, so there is
// nothing sound to derive children from. matches must be sorted ascending
// (verification always produces sorted answers) and must not be mutated
// afterwards.
func (d *Diversity) EvalState(matches []graph.NodeID) (float64, *ScoreState) {
	n := len(matches)
	numPairs := int64(n) * int64(n-1) / 2
	if (d.MaxPairs > 0 && numPairs > int64(d.MaxPairs)) || numPairs > maxUnitPairs {
		return d.Eval(matches), nil
	}
	contrib := make([]int64, n)
	var units int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			u := pairUnits(d.Distance(matches[i], matches[j]))
			units += u
			contrib[i] += u
			contrib[j] += u
		}
	}
	st := &ScoreState{matches: matches, pairUnits: units, contrib: contrib}
	return d.scoreUnits(d.relevanceSum(matches), units), st
}

// EvalDelta computes δ for a child match set from a scored parent state,
// exploiting q_child(G) ⊆ q_parent(G): the child's pair sum is the
// parent's minus the removed nodes' contributions, plus the removed-removed
// pairs subtracted twice (inclusion–exclusion). O(|removed|·depth + |removed|²)
// distance work instead of O(n²). The result — and the returned state — is
// bit-identical to EvalState on the same set, because both accumulate the
// same quantized units and integer addition is associative. ok reports
// false when the delta path does not apply (nil or sampled parent, not a
// subset, or a removal too large to beat recomputation); callers then fall
// back to EvalState.
func (d *Diversity) EvalDelta(parent *ScoreState, matches []graph.NodeID) (float64, *ScoreState, bool) {
	if parent == nil {
		return 0, nil, false
	}
	removed, removedPos, ok := subsetDiff(parent.matches, matches)
	if !ok {
		return 0, nil, false
	}
	if len(removed) == 0 {
		// Identical match set: share the parent state outright (including
		// any contributions already materialized on it).
		return d.scoreUnits(d.relevanceSum(matches), parent.pairUnits), parent, true
	}
	if len(removed) >= len(matches) {
		// More than half the set vanished: the O(|removed|²) correction no
		// longer undercuts the O(n²) recompute, and a fresh state resets
		// the materialization chain.
		return 0, nil, false
	}
	if d.MaxPairs > 0 {
		n := int64(len(matches))
		if n*(n-1)/2 > int64(d.MaxPairs) {
			return 0, nil, false // defensive: the parent could not have been exact
		}
	}
	pc := parent.contribution(d)
	units := parent.pairUnits
	for _, pi := range removedPos {
		units -= pc[pi]
	}
	for i := 0; i < len(removed); i++ {
		for j := i + 1; j < len(removed); j++ {
			units += pairUnits(d.Distance(removed[i], removed[j]))
		}
	}
	st := &ScoreState{matches: matches, pairUnits: units, base: parent, removed: removed}
	return d.scoreUnits(d.relevanceSum(matches), units), st, true
}

// subsetDiff walks two ascending NodeID lists and returns the elements of
// parent missing from child together with their positions in parent; ok
// reports whether child really is a subset of parent.
func subsetDiff(parent, child []graph.NodeID) (removed []graph.NodeID, removedPos []int, ok bool) {
	if len(child) > len(parent) {
		return nil, nil, false
	}
	j := 0
	for i, v := range parent {
		if j < len(child) && child[j] == v {
			j++
			continue
		}
		removed = append(removed, v)
		removedPos = append(removedPos, i)
	}
	if j != len(child) {
		return nil, nil, false
	}
	return removed, removedPos, true
}

// contribution returns the state's per-node contribution array,
// materializing it lazily. A state born from EvalDelta records only its
// (base, removed) delta — enough to score itself — and pays the
// O(|removed|·n) contribution update only when a child of its own needs
// it. The chain below the state is materialized oldest-first and released
// as it goes, so repeated scoring along one refinement path does linear
// total work.
func (s *ScoreState) contribution(d *Diversity) []int64 {
	if s.contrib != nil {
		return s.contrib
	}
	var chain []*ScoreState
	for cur := s; cur.contrib == nil; cur = cur.base {
		chain = append(chain, cur)
	}
	for k := len(chain) - 1; k >= 0; k-- {
		cur := chain[k]
		base := cur.base
		contrib := make([]int64, len(cur.matches))
		bi := 0
		for ci, v := range cur.matches {
			for base.matches[bi] != v {
				bi++
			}
			contrib[ci] = base.contrib[bi]
			bi++
		}
		for _, u := range cur.removed {
			for ci, v := range cur.matches {
				contrib[ci] -= pairUnits(d.Distance(u, v))
			}
		}
		cur.contrib = contrib
		cur.base, cur.removed = nil, nil
	}
	return s.contrib
}
