package measure

import (
	"testing"

	"fairsqg/internal/graph"
)

func benchGraph(b *testing.B, n int) (*graph.Graph, []graph.NodeID) {
	b.Helper()
	g := graph.New()
	majors := []string{"cs", "math", "bio", "econ", "art", "law", "med", "phys"}
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode("P", map[string]graph.Value{
			"major": graph.Str(majors[i%len(majors)]),
			"exp":   graph.Int(int64(i % 30)),
		})
	}
	g.Freeze()
	return g, ids
}

func BenchmarkLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Levenshtein("machine-learning", "networking-theory")
	}
}

func BenchmarkTupleDistance(b *testing.B) {
	g, ids := benchGraph(b, 1000)
	d := TupleDistance(g, []string{"major", "exp"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d(ids[i%1000], ids[(i*7)%1000])
	}
}

func BenchmarkDiversityExact(b *testing.B) {
	g, ids := benchGraph(b, 400)
	div := &Diversity{
		Lambda:          0.5,
		Relevance:       ConstantRelevance(1),
		Distance:        TupleDistance(g, []string{"major", "exp"}),
		LabelPopulation: 400,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		div.Eval(ids)
	}
}

func BenchmarkDiversitySampled(b *testing.B) {
	g, ids := benchGraph(b, 400)
	div := &Diversity{
		Lambda:          0.5,
		Relevance:       ConstantRelevance(1),
		Distance:        TupleDistance(g, []string{"major", "exp"}),
		LabelPopulation: 400,
		MaxPairs:        5000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		div.Eval(ids)
	}
}
