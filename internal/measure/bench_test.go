package measure

import (
	"fmt"
	"testing"

	"fairsqg/internal/graph"
)

func benchGraph(b *testing.B, n int) (*graph.Graph, []graph.NodeID) {
	b.Helper()
	g := graph.New()
	majors := []string{"cs", "math", "bio", "econ", "art", "law", "med", "phys"}
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode("P", map[string]graph.Value{
			"major": graph.Str(majors[i%len(majors)]),
			"exp":   graph.Int(int64(i % 30)),
		})
	}
	g.Freeze()
	return g, ids
}

func BenchmarkLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Levenshtein("machine-learning", "networking-theory")
	}
}

func BenchmarkTupleDistance(b *testing.B) {
	g, ids := benchGraph(b, 1000)
	d := TupleDistance(g, []string{"major", "exp"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d(ids[i%1000], ids[(i*7)%1000])
	}
}

func BenchmarkDiversityExact(b *testing.B) {
	g, ids := benchGraph(b, 400)
	div := &Diversity{
		Lambda:          0.5,
		Relevance:       ConstantRelevance(1),
		Distance:        TupleDistance(g, []string{"major", "exp"}),
		LabelPopulation: 400,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		div.Eval(ids)
	}
}

// BenchmarkDiversity sweeps re-scoring a refined (subset) match set across
// set sizes and overlap fractions: "exact" recomputes the child's pair loop
// from scratch (the pre-incremental behaviour), "delta" derives it from the
// parent's state through EvalDelta. Both paths produce bit-identical
// scores; the sweep measures the speedup the subset-delta path buys.
func BenchmarkDiversity(b *testing.B) {
	for _, n := range []int{300, 1000, 3000} {
		g, ids := benchGraph(b, n)
		div := &Diversity{
			Lambda:          0.5,
			Relevance:       ConstantRelevance(1),
			Distance:        TupleDistance(g, []string{"major", "exp"}),
			LabelPopulation: n,
		}
		for _, overlapPct := range []int{90, 70} {
			// Child keeps overlapPct% of the parent: drop every k-th node.
			drop := 100 / (100 - overlapPct)
			var child []graph.NodeID
			for i, v := range ids {
				if i%drop == 0 {
					continue
				}
				child = append(child, v)
			}
			_, parent := div.EvalState(ids)
			parent.contribution(div) // steady state: contributions materialized
			name := func(kind string) string {
				return fmt.Sprintf("%s/n=%d/overlap=%d", kind, n, overlapPct)
			}
			b.Run(name("exact"), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, st := div.EvalState(child); st == nil {
						b.Fatal("sampled")
					}
				}
			})
			b.Run(name("delta"), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, ok := div.EvalDelta(parent, child); !ok {
						b.Fatal("delta rejected")
					}
				}
			})
		}
	}
}

func BenchmarkDiversitySampled(b *testing.B) {
	g, ids := benchGraph(b, 400)
	div := &Diversity{
		Lambda:          0.5,
		Relevance:       ConstantRelevance(1),
		Distance:        TupleDistance(g, []string{"major", "exp"}),
		LabelPopulation: 400,
		MaxPairs:        5000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		div.Eval(ids)
	}
}
