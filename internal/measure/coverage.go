package measure

import (
	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
)

// Coverage evaluates the group-coverage quality
//
//	f(q, P) = C − Σ_i | |q(G) ∩ P_i| − c_i |,   C = Σ_i c_i
//
// clamped at 0, so f ∈ [0, C]. Larger is better: f = C means the answer
// covers every group with exactly the desired cardinality.
func Coverage(set groups.Set, answer []graph.NodeID) float64 {
	return CoverageCounts(set, set.Count(answer))
}

// CoverageCounts is Coverage over already-computed per-group counts (from
// Set.Count or a groups.Counter), letting a caller that needs both the
// feasibility verdict and the coverage value count the answer once.
func CoverageCounts(set groups.Set, counts []int) float64 {
	c := set.TotalWant()
	penalty := 0
	for i := range set {
		d := counts[i] - set[i].Want
		if d < 0 {
			d = -d
		}
		penalty += d
	}
	f := c - penalty
	if f < 0 {
		f = 0
	}
	return float64(f)
}

// Feasible reports whether the answer satisfies every coverage constraint:
// |q(G) ∩ P_i| ≥ c_i for all i (Section III-A).
func Feasible(set groups.Set, answer []graph.NodeID) bool {
	return FeasibleCounts(set, set.Count(answer))
}

// FeasibleCounts is Feasible over already-computed per-group counts.
func FeasibleCounts(set groups.Set, counts []int) bool {
	for i := range set {
		if counts[i] < set[i].Want {
			return false
		}
	}
	return true
}

// CoverageMax returns the upper bound C = Σ c_i of the coverage measure.
func CoverageMax(set groups.Set) float64 { return float64(set.TotalWant()) }
