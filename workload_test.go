package fairsqg

import (
	"bytes"
	"strings"
	"testing"
)

func TestWorkloadRoundTrip(t *testing.T) {
	g, tpl, set := publicFixture(t)
	gen, err := NewGenerator(&Config{G: g, Template: tpl, Groups: set, Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Bidirectional()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) == 0 {
		t.Fatal("nothing to persist")
	}

	var buf bytes.Buffer
	if err := SaveWorkload(&buf, tpl, res); err != nil {
		t.Fatal(err)
	}
	tpl2, instances, err := LoadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != len(res.Set) {
		t.Fatalf("loaded %d instances, saved %d", len(instances), len(res.Set))
	}
	// Ladders survive.
	for vi := range tpl.Vars {
		if len(tpl2.Vars[vi].Ladder) != len(tpl.Vars[vi].Ladder) {
			t.Fatalf("variable %s ladder lost", tpl.Vars[vi].Name)
		}
	}
	// Re-answering the loaded instances reproduces the saved answers.
	for i, inst := range instances {
		got := Answer(g, inst)
		if len(got) != len(res.Set[i].Matches) {
			t.Errorf("query %d: re-answer %d matches, saved %d", i, len(got), len(res.Set[i].Matches))
		}
		if inst.String() != res.Set[i].Q.String() {
			t.Errorf("query %d text drifted: %s vs %s", i, inst.String(), res.Set[i].Q.String())
		}
	}
}

func TestWorkloadOnlineRoundTrip(t *testing.T) {
	g, tpl, set := publicFixture(t)
	gen, err := NewGenerator(&Config{G: g, Template: tpl, Groups: set, Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Online(NewRandomStream(tpl, 40, 2), OnlineOptions{K: 4, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveOnlineWorkload(&buf, tpl, res); err != nil {
		t.Fatal(err)
	}
	_, instances, err := LoadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != len(res.Set) {
		t.Errorf("round trip lost instances: %d vs %d", len(instances), len(res.Set))
	}
}

func TestLoadWorkloadErrors(t *testing.T) {
	cases := []string{
		`{bad`,
		`{"template":"nonsense"}`,
		`{"template":"template t\nnode a Person x >= $v\noutput a","ladders":{"zz":["1"]}}`,
		// Missing ladder for v.
		`{"template":"template t\nnode a Person x >= $v\noutput a","ladders":{}}`,
		// Bad bindings arity.
		`{"template":"template t\nnode a Person x >= $v\noutput a","ladders":{"v":["1","2"]},"queries":[{"bindings":[0,0]}]}`,
	}
	for _, src := range cases {
		if _, _, err := LoadWorkload(strings.NewReader(src)); err == nil {
			t.Errorf("LoadWorkload(%q) should fail", src)
		}
	}
}
