#!/usr/bin/env bash
# End-to-end smoke test for live graphs: register a graph, mutate it over
# HTTP, run a job, kill the daemon uncleanly (plus a torn delta-log tail),
# restart on the same snapshot dir and assert the mutation survived the
# crash via WAL replay; then trigger a background checkpoint with
# -compact-after 1 and watch the snapshot epoch rotate on disk. Needs only
# bash, curl and go.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
pid=""
cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill -9 "$pid" 2>/dev/null || true
    fi
    rm -rf "$work"
}
trap cleanup EXIT

say() { echo "mutation-smoke: $*"; }
fail() { say "FAIL: $*"; ls -l "$work/snaps" 2>/dev/null || true; [[ -f "$work/server.log" ]] && sed 's/^/  server: /' "$work/server.log"; exit 1; }

start_server() { # args: logfile, extra flags...
    local logf="$1"; shift
    "$work/fairsqgd" -addr 127.0.0.1:0 -workers 2 -queue 8 -snapshot-dir "$work/snaps" "$@" >"$logf" 2>&1 &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/.*listening on //p' "$logf" | head -n1)"
        [[ -n "$addr" ]] && break
        kill -0 "$pid" 2>/dev/null || { cp "$logf" "$work/server.log"; fail "server died during startup"; }
        sleep 0.1
    done
    [[ -n "$addr" ]] || fail "server never reported its address"
    base="http://$addr"
}

run_job() { # expects $base; uses the example job spec
    local id state
    id="$(curl -fsS -X POST --data-binary @"$root/examples/server/job.json" "$base/v1/jobs" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
    [[ -n "$id" ]] || fail "no job id in submit response"
    state=""
    for _ in $(seq 1 300); do
        state="$(curl -fsS "$base/v1/jobs/$id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')"
        case "$state" in
            done) break ;;
            failed|cancelled) fail "job ended $state: $(curl -fsS "$base/v1/jobs/$id")" ;;
        esac
        sleep 0.2
    done
    [[ "$state" == "done" ]] || fail "job stuck in state '$state'"
}

say "building fairsqgd and graphgen"
(cd "$root" && go build -o "$work/fairsqgd" ./cmd/fairsqgd && go build -o "$work/graphgen" ./cmd/graphgen)

say "generating a small lki graph"
"$work/graphgen" -dataset lki -nodes 2000 -seed 7 -out "$work/lki.tsv"

say "starting fairsqgd"
start_server "$work/server.log"

curl -fsS -X PUT --data-binary @"$work/lki.tsv" "$base/v1/graphs/lki?format=tsv" >/dev/null || fail "graph upload"

say "mutating over HTTP"
res="$(curl -fsS -X POST --data-binary '[{"op":"removeNode","node":0},{"op":"removeNode","node":1}]' "$base/v1/graphs/lki/mutate")"
echo "$res" | grep -q '"version": *2' || fail "mutate did not report version 2: $res"
echo "$res" | grep -q '"nodesRemoved": *2' || fail "mutate did not remove 2 nodes: $res"
[[ -f "$work/snaps/lki.fdelta" ]] || fail "delta log not created beside the snapshot"
curl -fsS -X POST --data-binary '[{"op":"removeNode","node":999999}]' "$base/v1/graphs/lki/mutate" >/dev/null 2>&1 && fail "invalid batch accepted"

say "running a job on the mutated graph"
run_job

say "killing the daemon uncleanly and tearing the log tail"
kill -9 "$pid"; wait "$pid" 2>/dev/null || true; pid=""
printf 'GARBAGE!' >>"$work/snaps/lki.fdelta"

say "restarting on the same snapshot dir with -compact-after 1"
start_server "$work/server2.log" -compact-after 1
grep -q "restored 1 graph" "$work/server2.log" || { cp "$work/server2.log" "$work/server.log"; fail "restart did not restore from snapshots"; }
info="$(curl -fsS "$base/v1/graphs/lki")"
echo "$info" | grep -q '"version": *2' || fail "WAL replay lost the mutation: $info"
echo "$info" | grep -q '"replayedBatches": *1' || fail "replayedBatches missing: $info"
curl -fsS "$base/metrics" | grep -q '"truncations": *1' || fail "torn tail not counted in storage.wal.truncations"

say "running a job on the restored graph"
run_job

say "mutating past the compaction threshold"
curl -fsS -X POST --data-binary '[{"op":"removeNode","node":2}]' "$base/v1/graphs/lki/mutate" >/dev/null || fail "post-restore mutate"
rotated=""
for _ in $(seq 1 100); do
    if ls "$work/snaps"/lki@*.fsnap >/dev/null 2>&1 && [[ ! -f "$work/snaps/lki.fsnap" ]]; then
        rotated=yes; break
    fi
    sleep 0.1
done
[[ -n "$rotated" ]] || fail "background checkpoint never rotated the snapshot epoch"
say "snapshot epoch rotated: $(ls "$work/snaps")"

say "stopping with SIGTERM"
kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$pid" 2>/dev/null && fail "server did not exit after SIGTERM"
pid=""
say "PASS"
