#!/usr/bin/env bash
# End-to-end smoke test for fairsqgd: build, start on a random port,
# upload a generated graph, run a job to completion, scrape metrics, and
# shut down cleanly with SIGTERM. Needs only bash, curl and go.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
pid=""
cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill -9 "$pid" 2>/dev/null || true
    fi
    rm -rf "$work"
}
trap cleanup EXIT

say() { echo "smoke: $*"; }
fail() { say "FAIL: $*"; [[ -f "$work/server.log" ]] && sed 's/^/  server: /' "$work/server.log"; exit 1; }

say "building fairsqgd and graphgen"
(cd "$root" && go build -o "$work/fairsqgd" ./cmd/fairsqgd && go build -o "$work/graphgen" ./cmd/graphgen)

say "generating a small lki graph"
"$work/graphgen" -dataset lki -nodes 2000 -seed 7 -out "$work/lki.tsv"

say "starting fairsqgd on a random port"
"$work/fairsqgd" -addr 127.0.0.1:0 -workers 2 -queue 8 -snapshot-dir "$work/snaps" >"$work/server.log" 2>&1 &
pid=$!

# The daemon logs its actual listen address; wait for it.
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/.*listening on //p' "$work/server.log" | head -n1)"
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || fail "server died during startup"
    sleep 0.1
done
[[ -n "$addr" ]] || fail "server never reported its address"
base="http://$addr"
say "server is at $base"

curl -fsS "$base/healthz" >/dev/null || fail "healthz"

say "uploading the graph"
curl -fsS -X PUT --data-binary @"$work/lki.tsv" "$base/v1/graphs/lki?format=tsv" >/dev/null || fail "graph upload"

say "submitting the example job"
job_json="$root/examples/server/job.json"
id="$(curl -fsS -X POST --data-binary @"$job_json" "$base/v1/jobs" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
[[ -n "$id" ]] || fail "no job id in submit response"
say "job $id accepted"

state=""
for _ in $(seq 1 300); do
    state="$(curl -fsS "$base/v1/jobs/$id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')"
    case "$state" in
        done) break ;;
        failed|cancelled) fail "job ended $state: $(curl -fsS "$base/v1/jobs/$id")" ;;
    esac
    sleep 0.2
done
[[ "$state" == "done" ]] || fail "job stuck in state '$state'"
say "job finished"

queries="$(curl -fsS "$base/v1/jobs/$id/result" | grep -c '"text"')" || true
[[ "$queries" -gt 0 ]] || fail "result has no queries"
say "result has $queries queries"

curl -fsS "$base/v1/jobs/$id/events" | tail -n1 | grep -q '"state":"done"' || fail "event stream missing terminal state"

metrics="$(curl -fsS "$base/metrics")"
echo "$metrics" | grep -q '"done": 1' || fail "metrics do not show the finished job: $metrics"

say "stopping with SIGTERM"
kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
    fail "server did not exit after SIGTERM"
fi
wait "$pid" && rc=0 || rc=$?
[[ "$rc" -eq 0 ]] || fail "server exited with status $rc"
grep -q "bye" "$work/server.log" || fail "clean-shutdown log line missing"
pid=""

say "warm restart: same snapshot dir, preload flag should be skipped"
[[ -f "$work/snaps/lki.fsnap" ]] || fail "snapshot file not persisted on register"
"$work/fairsqgd" -addr 127.0.0.1:0 -workers 2 -queue 8 -snapshot-dir "$work/snaps" \
    -graph lki="$work/lki.tsv" >"$work/server2.log" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/.*listening on //p' "$work/server2.log" | head -n1)"
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || { cp "$work/server2.log" "$work/server.log"; fail "restarted server died during startup"; }
    sleep 0.1
done
[[ -n "$addr" ]] || fail "restarted server never reported its address"
base="http://$addr"
grep -q "restored 1 graph" "$work/server2.log" || fail "restart did not restore from snapshots"
grep -q "restored from snapshot, skipping" "$work/server2.log" || fail "-graph preload was not skipped after restore"
curl -fsS "$base/v1/graphs" | grep -q '"name": *"lki"' || fail "lki missing from restored registry"
curl -fsS "$base/metrics" | grep -q '"loads": 1' || fail "metrics missing snapshot load counter"
say "warm restart OK"

say "stopping restarted server"
kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$pid" 2>/dev/null && fail "restarted server did not exit after SIGTERM"
pid=""
say "PASS"
