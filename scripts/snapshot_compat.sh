#!/usr/bin/env bash
# Snapshot cross-version compatibility check: a v1 snapshot written by
# graphgen -snapshot-version 1 (the pre-mmap layout) must still restore
# in a fairsqgd running with -mmap-graphs — via the counted heap-decode
# fallback — while a v2 snapshot in the same directory is served
# memory-mapped. Asserts the storage.snapshots metrics distinguish the
# two paths and that the mapped graph answers a real job. Needs only
# bash, curl and go.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
pid=""
cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill -9 "$pid" 2>/dev/null || true
    fi
    rm -rf "$work"
}
trap cleanup EXIT

say() { echo "compat: $*"; }
fail() { say "FAIL: $*"; [[ -f "$work/server.log" ]] && sed 's/^/  server: /' "$work/server.log"; exit 1; }

say "building fairsqgd and graphgen"
(cd "$root" && go build -o "$work/fairsqgd" ./cmd/fairsqgd && go build -o "$work/graphgen" ./cmd/graphgen)

mkdir -p "$work/snaps"
say "writing a v1 (legacy) and a v2 (mappable) snapshot"
"$work/graphgen" -dataset lki -nodes 2000 -seed 7 -format snapshot \
    -snapshot-version 1 -out "$work/snaps/legacy.fsnap"
"$work/graphgen" -dataset lki -nodes 2000 -seed 7 -format snapshot \
    -snapshot-version 2 -out "$work/snaps/lki.fsnap"

say "starting fairsqgd -mmap-graphs on the snapshot dir"
"$work/fairsqgd" -addr 127.0.0.1:0 -workers 2 -queue 8 \
    -snapshot-dir "$work/snaps" -mmap-graphs >"$work/server.log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/.*listening on //p' "$work/server.log" | head -n1)"
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || fail "server died during startup"
    sleep 0.1
done
[[ -n "$addr" ]] || fail "server never reported its address"
base="http://$addr"
say "server is at $base"

grep -q "restored 2 graph" "$work/server.log" || fail "expected both snapshots restored"

graphs="$(curl -fsS "$base/v1/graphs")"
echo "$graphs" | grep -q '"name": *"lki"' || fail "v2 graph missing from registry"
echo "$graphs" | grep -q '"name": *"legacy"' || fail "v1 graph missing from registry"

metrics="$(curl -fsS "$base/metrics")"
metric() { echo "$metrics" | grep -o "\"$1\": *[0-9]*" | head -n1 | grep -o '[0-9]*$'; }
v1f="$(metric v1Fallbacks)"; mml="$(metric mmapLoads)"; mb="$(metric mappedBytes)"
[[ -n "$v1f" && "$v1f" -ge 1 ]] || fail "v1Fallbacks = '$v1f', want >= 1 (legacy snapshot not counted)"
[[ -n "$mml" && "$mml" -ge 1 ]] || fail "mmapLoads = '$mml', want >= 1 (v2 snapshot not mapped)"
[[ -n "$mb" && "$mb" -gt 0 ]] || fail "mappedBytes = '$mb', want > 0"
say "metrics: mmapLoads=$mml v1Fallbacks=$v1f mappedBytes=$mb"

say "running the example job against the mapped graph"
id="$(curl -fsS -X POST --data-binary @"$root/examples/server/job.json" "$base/v1/jobs" \
    | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
[[ -n "$id" ]] || fail "no job id in submit response"
state=""
for _ in $(seq 1 300); do
    state="$(curl -fsS "$base/v1/jobs/$id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')"
    case "$state" in
        done) break ;;
        failed|cancelled) fail "job ended $state: $(curl -fsS "$base/v1/jobs/$id")" ;;
    esac
    sleep 0.2
done
[[ "$state" == "done" ]] || fail "job stuck in state '$state'"
queries="$(curl -fsS "$base/v1/jobs/$id/result" | grep -c '"text"')" || true
[[ "$queries" -gt 0 ]] || fail "mapped graph produced no queries"
say "mapped graph answered the job with $queries queries"

say "stopping with SIGTERM (mapped graphs must unmap cleanly)"
kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$pid" 2>/dev/null && fail "server did not exit after SIGTERM"
wait "$pid" && rc=0 || rc=$?
[[ "$rc" -eq 0 ]] || fail "server exited with status $rc"
grep -q "bye" "$work/server.log" || fail "clean-shutdown log line missing"
pid=""
say "PASS"
