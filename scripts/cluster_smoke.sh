#!/usr/bin/env bash
# End-to-end smoke test for the fairsqgd cluster: build, start one
# coordinator and two workers on random ports, upload a generated graph,
# run a distributed par job to completion, verify the cluster metrics on
# every process, and shut the fleet down cleanly with SIGTERM. Needs only
# bash, curl and go.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$work"
}
trap cleanup EXIT

say() { echo "cluster-smoke: $*"; }
fail() {
    say "FAIL: $*"
    for log in "$work"/*.log; do
        [[ -f "$log" ]] && sed "s/^/  $(basename "$log"): /" "$log"
    done
    exit 1
}

# wait_addr LOGFILE -> echoes the listen address once the daemon logs it.
wait_addr() {
    local log="$1" addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/.*listening on //p' "$log" 2>/dev/null | head -n1)"
        [[ -n "$addr" ]] && { echo "$addr"; return 0; }
        sleep 0.1
    done
    return 1
}

say "building fairsqgd and graphgen"
(cd "$root" && go build -o "$work/fairsqgd" ./cmd/fairsqgd && go build -o "$work/graphgen" ./cmd/graphgen)

say "generating a small lki graph"
"$work/graphgen" -dataset lki -nodes 2000 -seed 7 -out "$work/lki.tsv"

say "starting two workers"
"$work/fairsqgd" -role worker -addr 127.0.0.1:0 >"$work/worker1.log" 2>&1 &
pids+=($!)
"$work/fairsqgd" -role worker -addr 127.0.0.1:0 >"$work/worker2.log" 2>&1 &
pids+=($!)
w1="$(wait_addr "$work/worker1.log")" || fail "worker 1 never reported its address"
w2="$(wait_addr "$work/worker2.log")" || fail "worker 2 never reported its address"
say "workers at $w1 and $w2"
curl -fsS "http://$w1/readyz" >/dev/null || fail "worker 1 readyz"
curl -fsS "http://$w2/readyz" >/dev/null || fail "worker 2 readyz"

say "starting the coordinator"
"$work/fairsqgd" -role coordinator -cluster-workers "$w1,$w2" -addr 127.0.0.1:0 \
    -workers 2 -queue 8 >"$work/coordinator.log" 2>&1 &
pids+=($!)
coord="$(wait_addr "$work/coordinator.log")" || fail "coordinator never reported its address"
base="http://$coord"
say "coordinator is at $base"
curl -fsS "$base/healthz" >/dev/null || fail "coordinator healthz"
curl -fsS "$base/readyz" >/dev/null || fail "coordinator readyz (live workers)"

say "uploading the graph to the coordinator"
curl -fsS -X PUT --data-binary @"$work/lki.tsv" "$base/v1/graphs/lki?format=tsv" >/dev/null || fail "graph upload"

say "submitting the distributed par job"
job_json="$root/examples/server/job_par.json"
id="$(curl -fsS -X POST --data-binary @"$job_json" "$base/v1/jobs" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
[[ -n "$id" ]] || fail "no job id in submit response"
say "job $id accepted"

state=""
for _ in $(seq 1 300); do
    state="$(curl -fsS "$base/v1/jobs/$id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')"
    case "$state" in
        done) break ;;
        failed|cancelled) fail "job ended $state: $(curl -fsS "$base/v1/jobs/$id")" ;;
    esac
    sleep 0.2
done
[[ "$state" == "done" ]] || fail "job stuck in state '$state'"
say "distributed job finished"

queries="$(curl -fsS "$base/v1/jobs/$id/result" | grep -c '"text"')" || true
[[ "$queries" -gt 0 ]] || fail "result has no queries"
say "result has $queries queries"

say "checking cluster metrics"
metrics="$(curl -fsS "$base/metrics")"
echo "$metrics" | grep -q '"cluster"' || fail "coordinator metrics have no cluster section: $metrics"
echo "$metrics" | grep -q '"liveWorkers": 2' || fail "cluster metrics do not show 2 live workers: $metrics"
echo "$metrics" | grep -q '"slabLatencyMs"' || fail "cluster metrics missing the slab latency histogram"
dispatched="$(echo "$metrics" | sed -n 's/.*"slabsDispatched": *\([0-9]*\).*/\1/p' | head -n1)"
[[ -n "$dispatched" && "$dispatched" -gt 0 ]] || fail "no slabs dispatched: $metrics"
say "coordinator dispatched $dispatched slabs"

ran1="$(curl -fsS "http://$w1/metrics" | sed -n 's/.*"slabsRun": *\([0-9]*\).*/\1/p' | head -n1)"
ran2="$(curl -fsS "http://$w2/metrics" | sed -n 's/.*"slabsRun": *\([0-9]*\).*/\1/p' | head -n1)"
[[ -n "$ran1" && -n "$ran2" ]] || fail "workers expose no slabsRun counter"
[[ $((ran1 + ran2)) -gt 0 ]] || fail "no worker ran any slab (w1=$ran1 w2=$ran2)"
say "workers ran $ran1 + $ran2 slabs"
pushed="$(curl -fsS "http://$w1/metrics" | sed -n 's/.*"snapshotsIn": *\([0-9]*\).*/\1/p' | head -n1)"
say "worker 1 ingested $pushed snapshot(s)"

say "submitting a batch (one good, one bad graph)"
batch="$(curl -fsS -X POST --data-binary "[$(cat "$job_json"),$(sed 's/"lki"/"nope"/' "$job_json")]" "$base/v1/jobs/batch")"
echo "$batch" | grep -q '"accepted": 1' || fail "batch did not accept exactly one item: $batch"
echo "$batch" | grep -q '"rejected": 1' || fail "batch did not reject exactly one item: $batch"
say "batch semantics OK"

say "stopping the fleet with SIGTERM (coordinator first so it drains against live workers)"
stop_one() {
    local pid="$1" name="$2"
    kill -TERM "$pid" 2>/dev/null || true
    for _ in $(seq 1 200); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    kill -0 "$pid" 2>/dev/null && fail "$name did not exit after SIGTERM"
    local rc=0
    wait "$pid" || rc=$?
    [[ "$rc" -eq 0 ]] || fail "$name exited with status $rc"
    grep -q "bye" "$work/$name.log" || fail "$name clean-shutdown log line missing"
}
stop_one "${pids[2]}" coordinator
stop_one "${pids[0]}" worker1
stop_one "${pids[1]}" worker2
pids=()
say "PASS"
