#!/usr/bin/env bash
# bench_order_guard.sh — guard the dynamic-order matcher path against
# performance regressions relative to the static-order ablation.
#
# Runs BenchmarkEngineWorkload/sequential with -order both ways in several
# paired invocations (dynamic and static share each invocation's noise
# window) and compares per-pair ns/op ratios. The MINIMUM ratio across pairs
# is the least-noise estimate: transient load inflates individual ratios,
# but a genuine regression of the dynamic path shows up in every pair, so
# min-ratio still catches it. Fails when even the best pair has dynamic
# more than MAX_RATIO slower than static.
set -euo pipefail
cd "$(dirname "$0")/.."

PAIRS="${PAIRS:-4}"
BENCHTIME="${BENCHTIME:-10x}"
MAX_RATIO="${MAX_RATIO:-1.10}"

ratios=()
for i in $(seq 1 "$PAIRS"); do
  out="$(go test -run '^$' -bench 'BenchmarkEngineWorkload/sequential' \
    -benchtime "$BENCHTIME" -count 1 ./internal/match/)"
  dyn="$(echo "$out" | awk '$1 == "BenchmarkEngineWorkload/sequential" {print $3}')"
  sta="$(echo "$out" | awk '$1 ~ /^BenchmarkEngineWorkload\/sequential\/order=static/ {print $3}')"
  if [ -z "$dyn" ] || [ -z "$sta" ]; then
    echo "bench_order_guard: benchmark output missing a variant:" >&2
    echo "$out" >&2
    exit 1
  fi
  ratio="$(awk -v d="$dyn" -v s="$sta" 'BEGIN {printf "%.4f", d / s}')"
  echo "pair $i: dynamic ${dyn} ns/op, static ${sta} ns/op, ratio ${ratio}"
  ratios+=("$ratio")
done

min="$(printf '%s\n' "${ratios[@]}" | sort -n | head -1)"
echo "min dynamic/static ratio over ${PAIRS} pairs: ${min} (limit ${MAX_RATIO})"
if awk -v m="$min" -v lim="$MAX_RATIO" 'BEGIN {exit !(m > lim)}'; then
  echo "bench_order_guard: dynamic order is >$(awk -v lim="$MAX_RATIO" 'BEGIN {printf "%.0f%%", (lim - 1) * 100}') slower than static in every pair — the default path regressed" >&2
  exit 1
fi
echo "bench_order_guard: OK"
