package fairsqg

import (
	"encoding/json"
	"fmt"
	"io"

	"fairsqg/internal/core"
	"fairsqg/internal/graph"
	"fairsqg/internal/query"
)

// Workload is a persisted set of generated query instances: the template
// (in the DSL, with explicit value ladders) plus each suggestion's
// bindings and measured quality. It is the artifact the benchmark
// use case (Section IV-C of the paper) hands to downstream drivers.
type Workload struct {
	// Template is the DSL text of the template.
	Template string `json:"template"`
	// Ladders records each range variable's bound value ladder, keyed by
	// variable name (the DSL does not carry ladders).
	Ladders map[string][]string `json:"ladders"`
	// Eps is the tolerance the set was generated under.
	Eps float64 `json:"eps"`
	// Queries are the suggested instances.
	Queries []WorkloadQuery `json:"queries"`
}

// WorkloadQuery is one persisted suggestion.
type WorkloadQuery struct {
	// Bindings is the instantiation (one level per template variable, in
	// template order; -1 is the wildcard).
	Bindings []int `json:"bindings"`
	// Text is the human-readable rendering.
	Text string `json:"text"`
	// Diversity and Coverage are the measured δ(q) and f(q).
	Diversity float64 `json:"diversity"`
	Coverage  float64 `json:"coverage"`
	// Answers is |q(G)| at generation time.
	Answers int `json:"answers"`
}

// SaveWorkload serializes a generation result.
func SaveWorkload(w io.Writer, tpl *Template, res *Result) error {
	return saveWorkload(w, tpl, res.Set, res.Eps)
}

// SaveOnlineWorkload serializes an online generation result.
func SaveOnlineWorkload(w io.Writer, tpl *Template, res *OnlineResult) error {
	return saveWorkload(w, tpl, res.Set, res.Eps)
}

func saveWorkload(w io.Writer, tpl *Template, set []*core.Verified, eps float64) error {
	doc := Workload{
		Template: query.Format(tpl),
		Ladders:  map[string][]string{},
		Eps:      eps,
	}
	for vi := range tpl.Vars {
		v := &tpl.Vars[vi]
		if v.Kind != query.RangeVar {
			continue
		}
		vals := make([]string, len(v.Ladder))
		for i, val := range v.Ladder {
			vals[i] = val.String()
		}
		doc.Ladders[v.Name] = vals
	}
	for _, v := range set {
		doc.Queries = append(doc.Queries, WorkloadQuery{
			Bindings:  append([]int(nil), v.Q.I...),
			Text:      v.Q.String(),
			Diversity: v.Point.Div,
			Coverage:  v.Point.Cov,
			Answers:   len(v.Matches),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadWorkload parses a persisted workload and reconstructs the template
// (with its ladders) and the instances. The instances can be re-answered
// against any compatible graph with Answer.
func LoadWorkload(r io.Reader) (*Template, []*Instance, error) {
	var doc Workload
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("fairsqg: decoding workload: %w", err)
	}
	tpl, err := ParseTemplate(doc.Template)
	if err != nil {
		return nil, nil, fmt.Errorf("fairsqg: workload template: %w", err)
	}
	for name, vals := range doc.Ladders {
		vi := tpl.Var(name)
		if vi < 0 {
			return nil, nil, fmt.Errorf("fairsqg: workload ladder for unknown variable %q", name)
		}
		ladder := make([]Value, len(vals))
		for i, s := range vals {
			ladder[i] = parseWorkloadValue(s)
		}
		tpl.Vars[vi].Ladder = ladder
	}
	for vi := range tpl.Vars {
		v := &tpl.Vars[vi]
		if v.Kind == query.RangeVar && len(v.Ladder) == 0 {
			return nil, nil, fmt.Errorf("fairsqg: workload missing ladder for variable %q", v.Name)
		}
	}
	var instances []*Instance
	for i, q := range doc.Queries {
		inst, err := query.NewInstance(tpl, q.Bindings)
		if err != nil {
			return nil, nil, fmt.Errorf("fairsqg: workload query %d: %w", i, err)
		}
		instances = append(instances, inst)
	}
	return tpl, instances, nil
}

func parseWorkloadValue(s string) Value {
	// Ladder values round-trip through Value.String; ParseValue restores
	// numbers/bools, everything else stays a string.
	return graph.ParseValue(s)
}
