// Command fairsqgd serves fairness-aware subgraph query generation over
// HTTP: upload or preload graphs, submit asynchronous generation jobs,
// stream their progress as NDJSON, and scrape metrics.
//
// Usage:
//
//	fairsqgd -addr :8080 -graph lki=lki.tsv -workers 2
//
// The daemon runs in one of three roles:
//
//	-role standalone   (default) the full job API, everything in-process
//	-role worker       a cluster slab executor: /cluster/slab, /cluster/graphs
//	-role coordinator  the full job API with par jobs fanned out over
//	                   -cluster-workers host:port,... (see README)
//
// Endpoints (see README.md for curl examples):
//
//	GET  /healthz, /readyz, /metrics, /debug/pprof/, /debug/vars
//	GET  /v1/graphs            PUT/POST /v1/graphs/{name}
//	POST /v1/jobs[/batch]      GET /v1/jobs/{id}[/result|/events]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fairsqg/internal/cluster"
	"fairsqg/internal/graph"
	"fairsqg/internal/match"
	"fairsqg/internal/server"
)

// graphFlags collects repeatable -graph name=path pairs.
type graphFlags []struct{ name, path string }

func (g *graphFlags) String() string {
	parts := make([]string, len(*g))
	for i, e := range *g {
		parts[i] = e.name + "=" + e.path
	}
	return strings.Join(parts, ",")
}

func (g *graphFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*g = append(*g, struct{ name, path string }{name, path})
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, errw *os.File) int {
	fs := flag.NewFlagSet("fairsqgd", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		addr           = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		role           = fs.String("role", "standalone", "process role: standalone, worker or coordinator")
		clusterWorkers = fs.String("cluster-workers", "", "comma-separated worker addresses (host:port,...) the coordinator dispatches slabs to")
		replicas       = fs.Int("replicas", 2, "workers each graph is placed on in coordinator mode")
		slabTimeout    = fs.Duration("slab-timeout", time.Minute, "per-attempt deadline for one dispatched slab")
		slabRetries    = fs.Int("slab-retries", 4, "attempts per slab before a distributed job fails")
		workers        = fs.Int("workers", 2, "concurrent job runners")
		queue          = fs.Int("queue", 16, "queued-job capacity before shedding with 429")
		retention      = fs.Duration("retention", 15*time.Minute, "how long finished jobs stay visible")
		timeout        = fs.Duration("timeout", 5*time.Minute, "default per-job deadline")
		maxTimeout     = fs.Duration("max-timeout", 30*time.Minute, "ceiling on per-job deadlines")
		matchWorkers   = fs.Int("match-workers", 0, "per-graph match engine fan-out (0 = GOMAXPROCS)")
		candCache      = fs.Int("cand-cache", 0, "per-graph candidate cache entries (0 default, <0 disable)")
		noAttrIndex    = fs.Bool("no-attr-index", false, "disable sorted attribute indexes for candidate selection (linear-scan ablation)")
		orderFlag      = fs.String("order", "dynamic", "backtracking variable order for every graph engine: dynamic or static (ablation; results identical)")
		noIncScore     = fs.Bool("no-inc-score", false, "disable incremental subset-delta diversity scoring (ablation; results identical)")
		maxUpload      = fs.Int64("max-upload", 64<<20, "largest accepted graph upload in bytes")
		snapshotDir    = fs.String("snapshot-dir", "", "persist registered graphs as binary snapshots here and restore them on startup (warm restart; standalone/coordinator)")
		mmapGraphs     = fs.Bool("mmap-graphs", false, "serve graphs memory-mapped from their snapshots in -snapshot-dir instead of decoding to the heap (out-of-core: restore is O(open), resident memory tracks what queries touch)")
		compactAfter   = fs.Int("compact-after", 0, "checkpoint a mutated graph in the background after this many mutation ops since its last compaction (0 disables; with -snapshot-dir this also rotates the snapshot epoch and resets the delta log)")
		drainFor       = fs.Duration("drain", 30*time.Second, "how long shutdown waits for running jobs")
		graphs         graphFlags
	)
	fs.Var(&graphs, "graph", "preload a graph as name=path (.json is JSON, .fsnap a snapshot, else TSV; repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(errw, "fairsqgd: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	order, err := match.ParseOrder(*orderFlag)
	if err != nil {
		fmt.Fprintf(errw, "fairsqgd: -order: %v\n", err)
		return 2
	}
	switch *role {
	case "standalone", "coordinator", "worker":
	default:
		fmt.Fprintf(errw, "fairsqgd: -role: unknown role %q (want standalone, worker or coordinator)\n", *role)
		return 2
	}
	if *role == "coordinator" && *clusterWorkers == "" {
		fmt.Fprintf(errw, "fairsqgd: -role=coordinator needs -cluster-workers host:port,...\n")
		return 2
	}
	if *role != "coordinator" && *clusterWorkers != "" {
		fmt.Fprintf(errw, "fairsqgd: -cluster-workers only applies to -role=coordinator\n")
		return 2
	}
	if *mmapGraphs && *snapshotDir == "" {
		fmt.Fprintf(errw, "fairsqgd: -mmap-graphs needs -snapshot-dir (graphs are mapped from their snapshot files)\n")
		return 2
	}

	logger := log.New(errw, "fairsqgd ", log.LstdFlags|log.Lmsgprefix)

	if *role == "worker" {
		return runWorker(workerConfig{
			addr: *addr, drainFor: *drainFor, graphs: graphs,
			opts: cluster.WorkerOptions{
				MatchWorkers:     *matchWorkers,
				CandCacheSize:    *candCache,
				DisableAttrIndex: *noAttrIndex,
				Order:            order,
				DisableIncScore:  *noIncScore,
				MaxSnapshotBytes: *maxUpload,
				Logger:           logger,
			},
		}, logger, errw)
	}

	var coord *cluster.Coordinator
	if *role == "coordinator" {
		coord, err = cluster.NewCoordinator(cluster.CoordinatorOptions{
			Workers:     strings.Split(*clusterWorkers, ","),
			Replicas:    *replicas,
			SlabTimeout: *slabTimeout,
			SlabRetries: *slabRetries,
			Logger:      logger,
		})
		if err != nil {
			fmt.Fprintf(errw, "fairsqgd: %v\n", err)
			return 2
		}
		defer coord.Close()
		logger.Printf("coordinator over workers %v", coord.WorkerURLs())
	}

	srv := server.New(server.Options{
		Jobs: server.ManagerOptions{
			Workers:        *workers,
			QueueDepth:     *queue,
			Retention:      *retention,
			DefaultTimeout: *timeout,
			MaxTimeout:     *maxTimeout,
		},
		MatchWorkers:     *matchWorkers,
		CandCacheSize:    *candCache,
		Order:            order,
		DisableAttrIndex: *noAttrIndex,
		DisableIncScore:  *noIncScore,
		MaxUploadBytes:   *maxUpload,
		SnapshotDir:      *snapshotDir,
		MmapGraphs:       *mmapGraphs,
		CompactAfter:     *compactAfter,
		RequireGraph:     false,
		Cluster:          coord,
		Logger:           logger,
	})
	srv.PublishExpvar("fairsqgd")

	// Graphs that came back warm from the snapshot directory don't need
	// their source files re-parsed; a corrupt or missing snapshot falls
	// through to the normal load below.
	restored := make(map[string]bool)
	for _, name := range srv.RestoredGraphs() {
		restored[name] = true
	}
	for _, gf := range graphs {
		if restored[gf.name] {
			logger.Printf("graph %s restored from snapshot, skipping %s", gf.name, gf.path)
			continue
		}
		if err := srv.Registry().LoadFile(gf.name, gf.path); err != nil {
			fmt.Fprintf(errw, "fairsqgd: load graph %s: %v\n", gf.name, err)
			return 1
		}
		info, _ := srv.Registry().Info(gf.name)
		logger.Printf("loaded graph %s: %d nodes, %d edges", gf.name, info.Nodes, info.Edges)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(errw, "fairsqgd: listen: %v\n", err)
		return 1
	}
	logger.Printf("role %s", *role)
	logger.Printf("listening on %s", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintf(errw, "fairsqgd: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	logger.Printf("shutting down: draining jobs (up to %v)", *drainFor)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	// Stop accepting HTTP first, then drain the job manager so running
	// jobs finish and persist their results before the process exits.
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Printf("job drain cut short: %v", err)
		return 1
	}
	logger.Printf("bye")
	return 0
}

// workerConfig carries the worker-role settings out of flag parsing.
type workerConfig struct {
	addr     string
	drainFor time.Duration
	graphs   graphFlags
	opts     cluster.WorkerOptions
}

// runWorker serves the cluster worker protocol: slab execution and
// snapshot ingestion, with health and metrics endpoints. Workers hold no
// job state; shutdown just stops accepting and lets in-flight slabs
// finish within the drain window.
func runWorker(cfg workerConfig, logger *log.Logger, errw *os.File) int {
	w := cluster.NewWorker(cfg.opts)
	for _, gf := range cfg.graphs {
		g, err := loadGraphFile(gf.path)
		if err != nil {
			fmt.Fprintf(errw, "fairsqgd: load graph %s: %v\n", gf.name, err)
			return 1
		}
		if err := w.RegisterGraph(gf.name, g); err != nil {
			fmt.Fprintf(errw, "fairsqgd: register graph %s: %v\n", gf.name, err)
			return 1
		}
		logger.Printf("loaded graph %s: %d nodes, %d edges", gf.name, g.NumNodes(), g.NumEdges())
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintf(errw, "fairsqgd: listen: %v\n", err)
		return 1
	}
	logger.Printf("role worker")
	logger.Printf("listening on %s", ln.Addr())

	httpSrv := &http.Server{Handler: w.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintf(errw, "fairsqgd: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	logger.Printf("shutting down: letting in-flight slabs finish (up to %v)", cfg.drainFor)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
		return 1
	}
	logger.Printf("bye")
	return 0
}

// loadGraphFile parses one graph file by extension, mirroring the
// registry's -graph semantics for the worker role.
func loadGraphFile(path string) (*graph.Graph, error) {
	lower := strings.ToLower(path)
	if strings.HasSuffix(lower, ".fsnap") {
		// File-backed fast path: sized read instead of io.Reader growth.
		return graph.ReadSnapshotFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(lower, ".json") {
		return graph.ReadJSON(f)
	}
	return graph.ReadTSV(f)
}
