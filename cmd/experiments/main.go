// Command experiments regenerates the paper's tables and figures over the
// synthetic datasets. Each experiment identifier corresponds to one table
// or figure of the evaluation section (see DESIGN.md's per-experiment
// index).
//
// Usage:
//
//	experiments -list
//	experiments -exp fig9a
//	experiments -exp all -scale quick
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"fairsqg/internal/bench"
	"fairsqg/internal/gen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	exp := flag.String("exp", "all", "experiment id or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	scale := flag.String("scale", "default", "workload scale: quick, default or full")
	seed := flag.Int64("seed", 1, "dataset/template seed")
	csv := flag.Bool("csv", false, "emit CSV instead of the aligned table")
	flag.Parse()

	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}

	if *list {
		fmt.Println(strings.Join(bench.Experiments(), "\n"))
		return
	}

	opts := bench.Options{Seed: *seed}
	switch *scale {
	case "quick":
		opts.Nodes = map[string]int{gen.DBP: 2500, gen.LKI: 3000, gen.Cite: 2500}
		opts.TotalC = 20
		opts.MaxDomain = 4
		opts.MaxPairs = 2000
		opts.StreamLen = 64
	case "default":
		opts.Nodes = map[string]int{gen.DBP: 8000, gen.LKI: 10000, gen.Cite: 9000}
		opts.TotalC = 60
		opts.MaxDomain = 6
		opts.MaxPairs = 10000
		opts.StreamLen = 160
	case "full":
		// gen.DefaultNodes per dataset, paper-scale C.
		opts.TotalC = 200
		opts.MaxDomain = 8
		opts.MaxPairs = 20000
		opts.StreamLen = 240
	default:
		log.Fatalf("unknown scale %q (want quick, default or full)", *scale)
	}

	h := bench.New(opts)
	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.Experiments()
	}
	failed := false
	for _, id := range ids {
		start := time.Now()
		rows, err := h.Run(id)
		if err != nil {
			log.Printf("%s: %v", id, err)
			failed = true
			continue
		}
		if *csv {
			fmt.Print(bench.FormatCSV(rows))
		} else {
			fmt.Print(bench.FormatRows(rows))
			fmt.Printf("(%s finished in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed {
		os.Exit(1)
	}
}
