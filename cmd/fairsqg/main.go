// Command fairsqg generates subgraph queries with fairness and diversity
// guarantees from the command line: load or synthesize a graph, supply a
// query template (DSL file or a built-in one), declare the groups to
// cover, pick an algorithm, and get an ε-Pareto set of query suggestions.
//
// Examples:
//
//	# talent search on a synthetic professional network
//	fairsqg -dataset lki -nodes 12000 -canon talent \
//	        -group-label Person -group-attr gender -cover 40 -alg bi
//
//	# custom graph + template, online workload generation
//	fairsqg -graph g.tsv -template q.tpl \
//	        -group-label Movie -group-attr genre -values Romance,Horror \
//	        -cover 50 -alg online -k 10 -w 40 -stream 500
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"fairsqg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fairsqg: ")

	graphFile := flag.String("graph", "", "graph file (.tsv, .json or .fsnap snapshot); empty = use -dataset")
	dataset := flag.String("dataset", "lki", "synthetic dataset when no -graph: dbp, lki or cite")
	nodes := flag.Int("nodes", 0, "synthetic dataset size (0 = default)")
	seed := flag.Int64("seed", 1, "synthetic generation seed")

	templateFile := flag.String("template", "", "template file in the DSL; empty = use -canon")
	canon := flag.String("canon", "talent", "built-in template: talent, movie or paper")
	maxDomain := flag.Int("max-domain", 8, "cap per range-variable value ladder")

	groupLabel := flag.String("group-label", "Person", "node label the groups partition")
	groupAttr := flag.String("group-attr", "gender", "attribute inducing the groups")
	values := flag.String("values", "", "comma-separated group values (empty = all)")
	cover := flag.Int("cover", 20, "coverage constraint per group (equal opportunity)")
	totalC := flag.Int("total", 0, "total coverage budget split evenly (overrides -cover)")

	alg := flag.String("alg", "bi", "algorithm: bi, rf, par, enum, kungs, cbm or online")
	eps := flag.Float64("eps", 0.05, "ε-dominance tolerance")
	lambda := flag.Float64("lambda", 0.5, "relevance/dissimilarity balance λ in [0,1] (0 = pure relevance)")
	maxPairs := flag.Int("max-pairs", 20000, "pairwise diversity sample cap (<0 = exact, no cap)")
	distAttrs := flag.String("dist-attrs", "", "comma-separated attributes for the diversity distance")
	matchWorkers := flag.Int("match-workers", 0, "per-instance match fan-out: 0/1 sequential, >1 concurrent engine, <0 GOMAXPROCS")
	candCache := flag.Int("cand-cache", 0, "candidate cache entries: 0 default, <0 disabled")
	noAttrIndex := flag.Bool("no-attr-index", false, "disable sorted attribute indexes for candidate selection (linear-scan ablation)")
	order := flag.String("order", "dynamic", "backtracking variable order: dynamic or static (ablation; results identical)")
	noIncScore := flag.Bool("no-inc-score", false, "disable incremental subset-delta diversity scoring (ablation; results identical)")

	k := flag.Int("k", 10, "online: result size to maintain")
	w := flag.Int("w", 40, "online: sliding-window size")
	streamLen := flag.Int("stream", 300, "online: instances to stream")

	verbose := flag.Bool("v", false, "print full query descriptions and answers")
	mutations := flag.String("mutations", "", "apply this JSON mutation batch to the loaded graph before anything else (same wire form as the server's mutate endpoint)")
	save := flag.String("save", "", "write the generated workload as JSON to this file")
	saveSnapshot := flag.String("save-snapshot", "", "write the loaded graph as a binary snapshot to this file and exit (offline conversion for warm loads)")
	flag.Parse()

	// Reject nonsense flag values up front: the generators and binders
	// would otherwise silently substitute defaults.
	if *nodes < 0 {
		log.Fatalf("-nodes must be non-negative, got %d", *nodes)
	}
	if *maxDomain < 1 {
		log.Fatalf("-max-domain must be at least 1, got %d", *maxDomain)
	}
	if *cover < 0 {
		log.Fatalf("-cover must be non-negative, got %d", *cover)
	}
	if *totalC < 0 {
		log.Fatalf("-total must be non-negative, got %d", *totalC)
	}
	if *alg == "online" && (*k < 1 || *w < 1 || *streamLen < 1) {
		log.Fatalf("online mode needs positive -k, -w and -stream (got %d, %d, %d)", *k, *w, *streamLen)
	}
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}
	matchOrder, err := fairsqg.ParseMatchOrder(*order)
	if err != nil {
		log.Fatalf("-order: %v", err)
	}

	g, err := loadGraph(*graphFile, *dataset, *nodes, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "graph: %s\n", fairsqg.SummarizeGraph(g))

	if *mutations != "" {
		data, err := os.ReadFile(*mutations)
		if err != nil {
			log.Fatalf("-mutations: %v", err)
		}
		ops, err := fairsqg.DecodeMutations(data)
		if err != nil {
			log.Fatalf("-mutations: %v", err)
		}
		mg, res, err := fairsqg.ApplyMutations(g, ops)
		if err != nil {
			log.Fatalf("-mutations: %v", err)
		}
		g = mg
		fmt.Fprintf(os.Stderr, "mutations: %d ops applied (version %d): %s\n",
			res.Ops, res.Version, fairsqg.SummarizeGraph(g))
	}

	if *saveSnapshot != "" {
		if err := saveTo(*saveSnapshot, func(w *os.File) error {
			return fairsqg.WriteGraphSnapshot(w, g)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "snapshot written to %s\n", *saveSnapshot)
		return
	}

	tpl, err := loadTemplate(*templateFile, *canon)
	if err != nil {
		log.Fatal(err)
	}
	if err := tpl.BindDomains(g, fairsqg.DomainOptions{MaxValues: *maxDomain}); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "template %s: |Q|=%d |X_L|=%d |X_E|=%d, instance space %d\n",
		tpl.Name, len(tpl.Edges), tpl.NumRangeVars(), tpl.NumEdgeVars(), tpl.InstanceSpaceSize())

	var set fairsqg.Groups
	if *values != "" {
		set = fairsqg.GroupsByValues(g, *groupLabel, *groupAttr, strings.Split(*values, ",")...)
	} else {
		set = fairsqg.GroupsByAttribute(g, *groupLabel, *groupAttr)
	}
	if len(set) == 0 {
		log.Fatalf("no groups for %s.%s", *groupLabel, *groupAttr)
	}
	if *totalC > 0 {
		set = fairsqg.SplitCoverageEvenly(set, *totalC)
	} else {
		set = fairsqg.EqualOpportunity(set, *cover)
	}
	for _, gr := range set {
		fmt.Fprintf(os.Stderr, "group %s: %d members, cover %d\n", gr.Name, gr.Size(), gr.Want)
	}

	cfg := &fairsqg.Config{
		G: g, Template: tpl, Groups: set, Eps: *eps, MaxPairs: *maxPairs,
		Lambda: *lambda, LambdaSet: true,
		MatchWorkers: *matchWorkers, CandCacheSize: *candCache,
		Order:            matchOrder,
		DisableAttrIndex: *noAttrIndex, DisableIncScore: *noIncScore,
	}
	if *distAttrs != "" {
		cfg.DistanceAttrs = strings.Split(*distAttrs, ",")
	}
	generator, err := fairsqg.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *alg == "online" {
		res, err := generator.Online(
			fairsqg.NewRandomStream(tpl, *streamLen, *seed+1),
			fairsqg.OnlineOptions{K: *k, Window: *w})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "online: processed %d, final ε=%.4f\n", res.Processed, res.Eps)
		printSet(g, res.Set, *verbose)
		if *save != "" {
			if err := saveTo(*save, func(w *os.File) error {
				return fairsqg.SaveOnlineWorkload(w, tpl, res)
			}); err != nil {
				log.Fatal(err)
			}
		}
		return
	}

	var res *fairsqg.Result
	switch *alg {
	case "bi":
		res, err = generator.Bidirectional()
	case "rf":
		res, err = generator.Refine()
	case "enum":
		res, err = generator.Enumerate()
	case "kungs":
		res, err = generator.ExactPareto()
	case "par":
		res, err = generator.Parallel(0)
	case "cbm":
		res, err = generator.CBM(fairsqg.CBMOptions{})
	default:
		log.Fatalf("unknown algorithm %q (want bi, rf, par, enum, kungs, cbm or online)", *alg)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: %d suggestions in %v; verified %d, pruned %d, feasible %d\n",
		*alg, len(res.Set), res.Elapsed.Round(1000000),
		res.Stats.Verified, res.Stats.Pruned, res.Stats.Feasible)
	if cs := res.Stats.Cache; cs.Hits+cs.Misses > 0 {
		fmt.Fprintf(os.Stderr, "cand-cache: %d hits / %d misses (%d evictions, %d entries)\n",
			cs.Hits, cs.Misses, cs.Evictions, cs.Entries)
	}
	if ds := res.Stats.DistCache; ds.Evals > 0 {
		fmt.Fprintf(os.Stderr, "dist-cache: %d evals, %d hits / %d misses (%d entries); %d incremental scores\n",
			ds.Evals, ds.Hits, ds.Misses, ds.Entries, res.Stats.IncScores)
	}
	printSet(g, res.Set, *verbose)
	if *save != "" {
		if err := saveTo(*save, func(w *os.File) error {
			return fairsqg.SaveWorkload(w, tpl, res)
		}); err != nil {
			log.Fatal(err)
		}
	}
}

// saveTo writes through fn into path, failing loudly on close errors.
func saveTo(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadGraph(file, dataset string, nodes int, seed int64) (*fairsqg.Graph, error) {
	if file == "" {
		return fairsqg.BuildDataset(dataset, fairsqg.DatasetOptions{Nodes: nodes, Seed: seed})
	}
	if strings.HasSuffix(file, ".fsnap") {
		// File-backed fast path: sized read, no io.Reader copy loop.
		return fairsqg.ReadGraphSnapshotFile(file)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(file, ".json") {
		return fairsqg.ReadGraphJSON(f)
	}
	return fairsqg.ReadGraphTSV(f)
}

func loadTemplate(file, canon string) (*fairsqg.Template, error) {
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return fairsqg.ParseTemplate(string(data))
	}
	switch canon {
	case "talent":
		return fairsqg.TalentTemplate(), nil
	case "movie":
		return fairsqg.MovieTemplate(), nil
	case "paper":
		return fairsqg.PaperTemplate(), nil
	default:
		return nil, fmt.Errorf("unknown built-in template %q (want talent, movie or paper)", canon)
	}
}

func printSet(g *fairsqg.Graph, set []*fairsqg.Verified, verbose bool) {
	for i, v := range set {
		fmt.Printf("q%d: %s\n", i+1, v.Q)
		fmt.Printf("    diversity=%.3f coverage=%.0f answers=%d\n", v.Point.Div, v.Point.Cov, len(v.Matches))
		if verbose {
			fmt.Print(indent(v.Q.Describe(), "    "))
		}
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
