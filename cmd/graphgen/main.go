// Command graphgen generates the synthetic evaluation datasets (dbp, lki,
// cite) and writes them in the TSV, JSON or binary snapshot graph format.
//
// Usage:
//
//	graphgen -dataset lki -nodes 26000 -seed 1 -format tsv -out lki.tsv
//	graphgen -dataset lki -format snapshot -out lki.fsnap   # for fairsqgd warm loads
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"fairsqg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphgen: ")
	dataset := flag.String("dataset", "lki", "dataset to generate: dbp, lki or cite")
	nodes := flag.Int("nodes", 0, "node budget (0 = dataset default)")
	seed := flag.Int64("seed", 1, "generation seed")
	format := flag.String("format", "tsv", "output format: tsv, json or snapshot")
	snapVersion := flag.Int("snapshot-version", 2, "snapshot layout version to emit: 2 (memory-mappable, default) or 1 (legacy, for older builds)")
	out := flag.String("out", "-", "output file (- = stdout)")
	stats := flag.Bool("stats", false, "print dataset statistics to stderr")
	flag.Parse()

	// A negative budget would silently fall back to the dataset default;
	// reject it instead.
	if *nodes < 0 {
		log.Fatalf("-nodes must be non-negative, got %d", *nodes)
	}
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}

	g, err := fairsqg.BuildDataset(*dataset, fairsqg.DatasetOptions{Nodes: *nodes, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, fairsqg.SummarizeGraph(g))
	}
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	switch *format {
	case "tsv":
		err = fairsqg.WriteGraphTSV(w, g)
	case "json":
		err = fairsqg.WriteGraphJSON(w, g)
	case "snapshot":
		switch *snapVersion {
		case 2:
			err = fairsqg.WriteGraphSnapshot(w, g)
		case 1:
			err = fairsqg.WriteGraphSnapshotV1(w, g)
		default:
			log.Fatalf("unknown -snapshot-version %d (want 1 or 2)", *snapVersion)
		}
	default:
		log.Fatalf("unknown format %q (want tsv, json or snapshot)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
}
