package fairsqg

import (
	"io"

	"fairsqg/internal/core"
	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
	"fairsqg/internal/match"
	"fairsqg/internal/measure"
	"fairsqg/internal/pareto"
	"fairsqg/internal/query"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases form the stable public surface.
type (
	// Graph is an attributed directed graph G = (V, E, L, T).
	Graph = graph.Graph
	// NodeID identifies a graph node.
	NodeID = graph.NodeID
	// Value is a dynamically typed attribute value.
	Value = graph.Value
	// Op is a comparison operator for search predicates.
	Op = graph.Op
	// Stats summarizes a graph.
	GraphStats = graph.Stats
	// GraphMemoryStats reports a frozen graph's columnar-storage and
	// sorted-index footprint (fixed at Freeze).
	GraphMemoryStats = graph.MemoryStats
	// AttrID is an interned attribute name in one graph's dictionary.
	AttrID = graph.AttrID

	// Template is a query template Q(u_o) with variables.
	Template = query.Template
	// TemplateBuilder assembles templates programmatically.
	TemplateBuilder = query.Builder
	// DomainOptions controls value-ladder construction.
	DomainOptions = query.DomainOptions
	// Instance is a fully instantiated query.
	Instance = query.Instance
	// Instantiation assigns binding levels to template variables.
	Instantiation = query.Instantiation

	// Group is one node group with its coverage constraint.
	Group = groups.Group
	// Groups is an ordered set of disjoint groups.
	Groups = groups.Set

	// Point is an instance's (diversity, coverage) coordinates.
	Point = pareto.Point

	// Config is the generation configuration C = (G, Q(u_o), P, ε).
	Config = core.Config
	// Result is a generation outcome.
	Result = core.Result
	// Verified is an evaluated instance with its answer and coordinates.
	Verified = core.Verified
	// Stats aggregates generation work counters.
	Stats = core.Stats
	// VerifyEvent describes one instance verification (trace hook).
	VerifyEvent = core.VerifyEvent

	// MatchEngine is the concurrent match engine: a goroutine-safe
	// evaluator that owns a shared candidate cache and partitions each
	// instance's output-node candidates across a worker pool. Configure
	// per-run engines via Config.MatchWorkers / Config.CandCacheSize; use
	// NewMatchEngine for standalone instance evaluation.
	MatchEngine = match.Engine
	// MatchEngineOptions configures NewMatchEngine.
	MatchEngineOptions = match.EngineOptions
	// MatchEngineStats aggregates engine work counters.
	MatchEngineStats = match.EngineStats
	// CacheStats reports candidate-cache hit/miss/eviction counters.
	CacheStats = match.CacheStats
	// MatchOrder selects the matcher's backtracking variable-ordering
	// policy (Config.Order / MatchEngineOptions.Order); results are
	// identical in both settings.
	MatchOrder = match.Order
	// PairCacheStats reports pair-distance cache eval/hit/miss counters
	// (Stats.DistCache and MatchEngineStats.Dist).
	PairCacheStats = measure.PairCacheStats

	// InstanceStream feeds OnlineQGen.
	InstanceStream = core.InstanceStream
	// OnlineOptions parameterizes online generation.
	OnlineOptions = core.OnlineOptions
	// OnlineResult is the outcome of an online run.
	OnlineResult = core.OnlineResult
	// OnlineCheckpoint is a periodic online snapshot.
	OnlineCheckpoint = core.OnlineCheckpoint
	// CBMOptions parameterizes the ε-constraint baseline.
	CBMOptions = core.CBMOptions

	// Mutation is one graph mutation op (add/remove node or edge, set
	// attribute); a batch applies all-or-nothing via ApplyMutations or
	// LiveGraph.Apply.
	Mutation = graph.Mutation
	// MutOp selects a Mutation's operation.
	MutOp = graph.MutOp
	// ApplyResult reports what one applied mutation batch did.
	ApplyResult = graph.ApplyResult
	// AttrPair names one attribute value in a Mutation's AddNode op.
	AttrPair = graph.AttrPair
	// LiveGraph wraps a frozen graph with serialized mutation and
	// compaction; readers Acquire generation handles that stay immutable.
	LiveGraph = graph.Live
	// WALWriter appends mutation batches to a checksummed delta log.
	WALWriter = graph.WALWriter
	// WALReplay is the outcome of reading a delta log back.
	WALReplay = graph.WALReplay
	// MutationEvent announces a new graph generation to an online run.
	MutationEvent = core.MutationEvent
	// MutationSource feeds OnlineQGen graph mutation events.
	MutationSource = core.MutationSource
)

// Comparison operators for literals.
const (
	OpLT = graph.OpLT
	OpLE = graph.OpLE
	OpEQ = graph.OpEQ
	OpGE = graph.OpGE
	OpGT = graph.OpGT
)

// Wildcard is the "don't care" binding level.
const Wildcard = query.Wildcard

// Backtracking variable-ordering policies (MatchOrder values).
const (
	// OrderDynamic re-picks the cheapest frontier node at every search
	// depth from live candidate counts (the default).
	OrderDynamic = match.OrderDynamic
	// OrderStatic keeps the per-plan connectivity-first order (ablation).
	OrderStatic = match.OrderStatic
)

// ParseMatchOrder parses a -order flag value ("dynamic" or "static").
var ParseMatchOrder = match.ParseOrder

// Attribute value constructors.
var (
	// Num wraps a float as a Value.
	Num = graph.Num
	// Int wraps an integer as a Value.
	Int = graph.Int
	// Str wraps a string as a Value.
	Str = graph.Str
	// Bool wraps a boolean as a Value.
	Bool = graph.Bool
)

// Mutation operations.
const (
	MutAddNode    = graph.MutAddNode
	MutRemoveNode = graph.MutRemoveNode
	MutAddEdge    = graph.MutAddEdge
	MutRemoveEdge = graph.MutRemoveEdge
	MutSetAttr    = graph.MutSetAttr
)

// NewGraph returns an empty graph; add nodes and edges, then Freeze it.
func NewGraph() *Graph { return graph.New() }

// NewLiveGraph wraps a frozen graph for mutation: Apply produces new
// immutable generations copy-on-write, Compact re-freezes the overlay
// chain into a canonical layout without changing any cache coordinates.
func NewLiveGraph(g *Graph) *LiveGraph { return graph.NewLive(g) }

// ApplyMutations applies one batch to a frozen graph, returning the new
// generation (the input is unchanged) and a report. The batch validates
// against the evolving overlay and applies all-or-nothing.
func ApplyMutations(g *Graph, ops []Mutation) (*Graph, *ApplyResult, error) {
	return graph.ApplyBatch(g, ops)
}

// OpenMutationLog opens (creating if absent) a graph's delta log for
// appending mutation batches; see WALWriter.
func OpenMutationLog(path string) (*WALWriter, error) { return graph.OpenWAL(path) }

// ReplayMutationLog reads a delta log back; with repair set, a torn tail
// (crash mid-append) is truncated so the log is appendable again.
func ReplayMutationLog(path string, repair bool) (*WALReplay, error) {
	return graph.ReplayWAL(path, repair)
}

// EncodeMutations serializes a batch in the JSON wire form accepted by
// the server's mutate endpoint; DecodeMutations inverts it.
func EncodeMutations(ops []Mutation) ([]byte, error) { return graph.EncodeMutations(ops) }

// DecodeMutations parses the JSON wire form of a mutation batch.
func DecodeMutations(data []byte) ([]Mutation, error) { return graph.DecodeMutations(data) }

// GraphsEquivalent reports whether two frozen graphs describe the same
// logical graph — same live nodes, labels, attributes and edge multisets
// — regardless of physical layout (mutated overlay vs. fresh rebuild).
func GraphsEquivalent(a, b *Graph) error { return graph.Equivalent(a, b) }

// CheckGraphInvariants validates a frozen graph's internal consistency
// (CSR symmetry, index permutations, tombstone accounting); mutation and
// compaction tests run it after every generation change.
func CheckGraphInvariants(g *Graph) error { return graph.CheckInvariants(g) }

// ReadGraphJSON loads a graph from its JSON form and freezes it.
func ReadGraphJSON(r io.Reader) (*Graph, error) { return graph.ReadJSON(r) }

// WriteGraphJSON serializes a graph as JSON.
func WriteGraphJSON(w io.Writer, g *Graph) error { return graph.WriteJSON(w, g) }

// ReadGraphTSV loads a graph from the tab-separated form and freezes it.
func ReadGraphTSV(r io.Reader) (*Graph, error) { return graph.ReadTSV(r) }

// WriteGraphTSV serializes a graph in the tab-separated form.
func WriteGraphTSV(w io.Writer, g *Graph) error { return graph.WriteTSV(w, g) }

// ReadGraphSnapshot loads a frozen graph from its binary snapshot form;
// unlike the TSV/JSON readers it restores columns and indexes directly
// without re-running Freeze.
func ReadGraphSnapshot(r io.Reader) (*Graph, error) { return graph.ReadSnapshot(r) }

// ReadGraphSnapshotFile loads a snapshot straight from a file, sizing the
// buffer from the file's length instead of growing through an io.Reader;
// prefer it over ReadGraphSnapshot when the snapshot is on disk.
func ReadGraphSnapshotFile(path string) (*Graph, error) { return graph.ReadSnapshotFile(path) }

// OpenGraphSnapshotMapped opens a version 2 snapshot file memory-mapped:
// the graph's frozen sections are served zero-copy from the page cache,
// making open time independent of graph size. The caller must Close the
// returned graph when done reading; see graph.OpenSnapshotMapped for the
// lifetime rules. Version 1 files return an error wrapping
// graph.ErrSnapshotVersion — fall back to ReadGraphSnapshotFile.
func OpenGraphSnapshotMapped(path string) (*Graph, error) { return graph.OpenSnapshotMapped(path) }

// WriteGraphSnapshot serializes a frozen graph's exact in-memory layout
// as a versioned, checksummed binary snapshot (the memory-mappable
// version 2 layout; WriteGraphSnapshotV1 emits the legacy version).
func WriteGraphSnapshot(w io.Writer, g *Graph) error { return graph.WriteSnapshot(w, g) }

// WriteGraphSnapshotV1 serializes a frozen graph in the legacy version 1
// snapshot layout, for artifacts consumed by older builds.
func WriteGraphSnapshotV1(w io.Writer, g *Graph) error { return graph.WriteSnapshotV1(w, g) }

// SummarizeGraph computes descriptive statistics of a frozen graph.
func SummarizeGraph(g *Graph) GraphStats { return graph.Summarize(g) }

// InduceSubgraph builds the frozen subgraph induced by a node set,
// returning it with the old→new ID mapping.
func InduceSubgraph(g *Graph, nodes []NodeID) (*Graph, map[NodeID]NodeID) {
	return graph.Induce(g, nodes)
}

// ParseTemplate reads a template from its textual form (see the package
// documentation for the grammar).
func ParseTemplate(src string) (*Template, error) { return query.ParseString(src) }

// FormatTemplate renders a template back into the textual form.
func FormatTemplate(t *Template) string { return query.Format(t) }

// NewTemplate starts a template builder.
func NewTemplate(name string) *TemplateBuilder { return query.NewBuilder(name) }

// GroupsByAttribute partitions the nodes with a label into one group per
// distinct value of an attribute.
func GroupsByAttribute(g *Graph, label, attr string) Groups {
	return groups.ByAttribute(g, label, attr)
}

// GroupsByValues builds groups for the listed attribute values only.
func GroupsByValues(g *Graph, label, attr string, values ...string) Groups {
	return groups.ByValues(g, label, attr, values...)
}

// EqualOpportunity assigns the same coverage constraint to every group.
func EqualOpportunity(s Groups, c int) Groups { return groups.EqualOpportunity(s, c) }

// SplitCoverageEvenly distributes a total coverage budget evenly.
func SplitCoverageEvenly(s Groups, total int) Groups { return groups.SplitEvenly(s, total) }

// DisparateImpact configures the "80% rule": the majority group requires c
// and every other group at least ceil(ratio·c).
func DisparateImpact(s Groups, majority string, c int, ratio float64) (Groups, error) {
	return groups.DisparateImpact(s, majority, c, ratio)
}

// Generator runs the FairSQG algorithms over one configuration.
type Generator struct {
	runner *core.Runner
}

// NewGenerator validates the configuration and prepares a generator.
func NewGenerator(cfg *Config) (*Generator, error) {
	r, err := core.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return &Generator{runner: r}, nil
}

// Enumerate runs the naive EnumQGen baseline: verify the full instance
// space, then reduce it to an ε-Pareto set.
func (g *Generator) Enumerate() (*Result, error) { return g.runner.EnumQGen() }

// Refine runs RfQGen: depth-first "refine as always" exploration of the
// instance lattice with infeasibility pruning and incremental verification.
func (g *Generator) Refine() (*Result, error) { return g.runner.RfQGen() }

// Bidirectional runs BiQGen: interleaved forward-refinement and
// backward-relaxation exploration with sandwich pruning.
func (g *Generator) Bidirectional() (*Result, error) { return g.runner.BiQGen() }

// Parallel runs ParQGen: the instance lattice is partitioned into slabs
// along the widest variable and explored concurrently with the RfQGen
// strategy (the paper's future-work direction). workers <= 0 selects
// GOMAXPROCS.
func (g *Generator) Parallel(workers int) (*Result, error) { return g.runner.ParQGen(workers) }

// ExactPareto enumerates the instance space and returns the exact Pareto
// instance set via Kung's algorithm.
func (g *Generator) ExactPareto() (*Result, error) { return g.runner.Kungs() }

// CBM runs the ε-constraint bisection baseline.
func (g *Generator) CBM(opts CBMOptions) (*Result, error) { return g.runner.CBM(opts) }

// Online runs OnlineQGen over an instance stream, maintaining a fixed-size
// ε-Pareto set with a small, monotonically adjusted ε.
func (g *Generator) Online(stream InstanceStream, opts OnlineOptions) (*OnlineResult, error) {
	return g.runner.OnlineQGen(stream, opts)
}

// AllFeasible verifies the full instance space and returns every feasible
// instance — the reference set for quality indicators.
func (g *Generator) AllFeasible() ([]*Verified, error) { return g.runner.AllFeasible() }

// NewRandomStream emits deterministic random instantiations of a template.
func NewRandomStream(t *Template, count int, seed int64) InstanceStream {
	return core.NewRandomStream(t, count, seed)
}

// NewSliceStream replays a fixed list of instances.
func NewSliceStream(items []*Instance) InstanceStream {
	return &core.SliceStream{Items: items}
}

// Answer evaluates a single instance against a graph and returns its match
// set q(u_o, G) under subgraph isomorphism.
func Answer(g *Graph, q *Instance) []NodeID {
	return match.New(g).EvalOutput(q)
}

// NewMatchEngine returns a concurrent, goroutine-safe instance evaluator
// over a frozen graph; ParEvalOutput results are identical to Answer's.
func NewMatchEngine(g *Graph, opts MatchEngineOptions) *MatchEngine {
	return match.NewEngine(g, opts)
}

// Feasible reports whether an answer meets every coverage constraint.
func Feasible(set Groups, answer []NodeID) bool { return measure.Feasible(set, answer) }

// Coverage computes the group-coverage quality f(q, P) of an answer.
func Coverage(set Groups, answer []NodeID) float64 { return measure.Coverage(set, answer) }

// EpsIndicator computes the normalized ε-indicator I_ε = 1 − ε_m/ε of an
// approximation set against a reference set.
func EpsIndicator(approx, ref []Point, eps float64) float64 {
	return pareto.EpsIndicator(approx, ref, eps)
}

// RIndicator computes the preference-weighted indicator I_R.
func RIndicator(set []Point, lambdaR, divMax, covMax float64) float64 {
	return pareto.RIndicator(set, lambdaR, divMax, covMax)
}
