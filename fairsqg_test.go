package fairsqg

import (
	"bytes"
	"strings"
	"testing"
)

// publicFixture builds a small dataset + template + groups through the
// public API only.
func publicFixture(t *testing.T) (*Graph, *Template, Groups) {
	t.Helper()
	g, err := BuildDataset(DatasetLKI, DatasetOptions{Nodes: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tpl := TalentTemplate()
	if err := tpl.BindDomains(g, DomainOptions{MaxValues: 4}); err != nil {
		t.Fatal(err)
	}
	set := EqualOpportunity(GroupsByAttribute(g, "Person", "gender"), 5)
	return g, tpl, set
}

func TestPublicAPIEndToEnd(t *testing.T) {
	g, tpl, set := publicFixture(t)
	gen, err := NewGenerator(&Config{G: g, Template: tpl, Groups: set, Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Bidirectional()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) == 0 {
		t.Fatal("BiQGen produced nothing via public API")
	}
	// The returned instances answer consistently through the standalone
	// Answer helper.
	for _, v := range res.Set {
		ans := Answer(g, v.Q)
		if len(ans) != len(v.Matches) {
			t.Errorf("Answer() size %d != stored %d", len(ans), len(v.Matches))
		}
		if !Feasible(set, ans) {
			t.Error("returned instance infeasible")
		}
		if Coverage(set, ans) != v.Point.Cov {
			t.Error("coverage mismatch")
		}
	}
	// Indicators work over public points.
	ref, err := gen.AllFeasible()
	if err != nil {
		t.Fatal(err)
	}
	refPts := make([]Point, len(ref))
	for i, v := range ref {
		refPts[i] = v.Point
	}
	if ie := EpsIndicator(res.Points(), refPts, 0.1); ie < 0 || ie > 1 {
		t.Errorf("I_ε = %v", ie)
	}
	if ir := RIndicator(res.Points(), 0.5, 10, 10); ir < 0 || ir > 1 {
		t.Errorf("I_R = %v", ir)
	}
}

func TestPublicTemplateDSL(t *testing.T) {
	tpl, err := ParseTemplate(`
template demo
node a Person title = "Director"
node b Person yearsOfExp >= $x
edge b a recommend ?e
output a
`)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTemplate(tpl)
	if !strings.Contains(out, "template demo") {
		t.Errorf("FormatTemplate:\n%s", out)
	}
	// Builder path produces an equivalent template.
	tpl2, err := NewTemplate("demo").
		Node("a", "Person").Literal("a", "title", OpEQ, Str("Director")).
		Node("b", "Person").RangeVar("x", "b", "yearsOfExp", OpGE).
		VarEdge("e", "b", "a", "recommend").
		Output("a").Build()
	if err != nil {
		t.Fatal(err)
	}
	if FormatTemplate(tpl2) != out {
		t.Errorf("builder and DSL disagree:\n%s\nvs\n%s", out, FormatTemplate(tpl2))
	}
}

func TestPublicGraphIO(t *testing.T) {
	g := NewGraph()
	a := g.AddNode("Person", map[string]Value{"name": Str("ann"), "age": Int(30)})
	b := g.AddNode("Person", map[string]Value{"name": Str("bob")})
	if err := g.AddEdge(a, b, "knows"); err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	var buf bytes.Buffer
	if err := WriteGraphTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraphTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 2 || g2.NumEdges() != 1 {
		t.Error("TSV round trip lost data")
	}
	buf.Reset()
	if err := WriteGraphJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadGraphJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if s := SummarizeGraph(g); s.Nodes != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPublicOnline(t *testing.T) {
	g, tpl, set := publicFixture(t)
	gen, err := NewGenerator(&Config{G: g, Template: tpl, Groups: set, Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Online(NewRandomStream(tpl, 60, 3), OnlineOptions{K: 4, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) == 0 || len(res.Set) > 4 {
		t.Errorf("online set size %d", len(res.Set))
	}
	// SliceStream replays specific instances.
	root := RootInstance(tpl)
	res2, err := gen.Online(NewSliceStream([]*Instance{root}), OnlineOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Processed != 1 {
		t.Errorf("processed %d", res2.Processed)
	}
}

func TestPublicGroupHelpers(t *testing.T) {
	g, _, _ := publicFixture(t)
	set := GroupsByValues(g, "Person", "gender", "male", "female")
	if len(set) != 2 {
		t.Fatalf("groups = %d", len(set))
	}
	set = SplitCoverageEvenly(set, 7)
	if set[0].Want+set[1].Want != 7 {
		t.Error("split wrong")
	}
	if _, err := DisparateImpact(set, "gender=male", 10, 0.8); err != nil {
		t.Fatal(err)
	}
	if _, err := DisparateImpact(set, "nope", 10, 0.8); err == nil {
		t.Error("bad majority accepted")
	}
}

func TestPublicTemplateGenerators(t *testing.T) {
	g, err := BuildDataset(DatasetCite, DatasetOptions{Nodes: 1500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tpl, err := GenerateTemplate(DatasetCite, TemplateParams{Size: 3, RangeVars: 1, EdgeVars: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.BindDomains(g, DomainOptions{MaxValues: 5}); err != nil {
		t.Fatal(err)
	}
	got, err := GenerateFeasibleTemplate(g, DatasetCite,
		TemplateParams{Size: 3, RangeVars: 1, EdgeVars: 1, Seed: 4}, 5, 10,
		func(t *Template) bool { return true })
	if err != nil || got == nil {
		t.Fatal(err)
	}
	// Canonical templates exist for each dataset.
	for _, tp := range []*Template{TalentTemplate(), MovieTemplate(), PaperTemplate()} {
		if err := tp.Validate(); err != nil {
			t.Error(err)
		}
	}
	// MakeInstance validates arity.
	if _, err := MakeInstance(TalentTemplate(), Instantiation{0}); err == nil {
		t.Error("bad arity accepted")
	}
}
