package fairsqg

import (
	"fairsqg/internal/rpq"
)

// The rpq types extend FairSQG to regular path queries — the query class
// the paper's conclusion names as future work. An RPQ template selects
// target nodes reachable from predicate-filtered source nodes along paths
// in a regular language over edge labels, within a bounded hop count; its
// parameters (source-predicate range variables, alternation-branch flags,
// the hop-bound ladder) span an instance lattice with the same
// monotonicity properties as subgraph templates, so the ε-Pareto
// generation carries over.
type (
	// RPQExpr is a regular expression over edge labels.
	RPQExpr = rpq.Expr
	// RPQTemplate is a parameterized regular path query.
	RPQTemplate = rpq.Template
	// RPQInstantiation binds an RPQ template's parameters.
	RPQInstantiation = rpq.Instantiation
	// RPQConfig configures RPQ generation.
	RPQConfig = rpq.Config
	// RPQResult is an RPQ generation outcome.
	RPQResult = rpq.Result
	// RPQVerified is an evaluated RPQ instance.
	RPQVerified = rpq.Verified
)

// ParsePathExpr parses a path expression: labels, '/' concatenation, '|'
// alternation, '*', '+', '?' and parentheses (e.g. "cites/(refs|links)*").
func ParsePathExpr(src string) (RPQExpr, error) { return rpq.Parse(src) }

// NewRPQTemplate assembles an RPQ template over a source label, a path
// expression (whose top-level alternation branches become Boolean
// variables) and a strictly descending hop-bound ladder.
func NewRPQTemplate(name, sourceLabel string, expr RPQExpr, bounds []int) (*RPQTemplate, error) {
	return rpq.NewTemplate(name, sourceLabel, expr, bounds)
}

// RPQGenerator runs the RPQ generation algorithms.
type RPQGenerator struct {
	runner *rpq.Runner
}

// NewRPQGenerator validates the configuration and prepares a generator.
func NewRPQGenerator(cfg *RPQConfig) (*RPQGenerator, error) {
	r, err := rpq.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return &RPQGenerator{runner: r}, nil
}

// Enumerate verifies the full RPQ instance space and reduces it to an
// ε-Pareto set.
func (g *RPQGenerator) Enumerate() (*RPQResult, error) { return g.runner.Enumerate() }

// Generate runs the refinement-based strategy with infeasibility pruning.
func (g *RPQGenerator) Generate() (*RPQResult, error) { return g.runner.Generate() }

// AllFeasible returns every feasible RPQ instance (indicator reference).
func (g *RPQGenerator) AllFeasible() []*RPQVerified { return g.runner.AllFeasible() }
