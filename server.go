package fairsqg

import (
	"fairsqg/internal/server"
)

// Re-exported fairsqgd service types. The daemon in cmd/fairsqgd is the
// usual entry point; these aliases let programs embed the service — its
// graph registry, async job manager and HTTP surface — directly.
type (
	// Server is the assembled HTTP query-generation service.
	Server = server.Server
	// ServerOptions configures a Server.
	ServerOptions = server.Options
	// JobManagerOptions tunes the async job manager.
	JobManagerOptions = server.ManagerOptions
	// JobSpec is the JSON body of a job submission.
	JobSpec = server.JobSpec
	// JobGroupsSpec declares a job's fairness groups.
	JobGroupsSpec = server.GroupsSpec
	// JobStatus is a job's externally visible summary.
	JobStatus = server.JobStatus
	// JobResult is the rendered outcome of a finished job.
	JobResult = server.JobResult
	// JobEvent is one NDJSON line of a job's progress stream.
	JobEvent = server.JobEvent
	// GraphInfo summarizes a registered graph.
	GraphInfo = server.GraphInfo
)

// NewServer builds the HTTP service; see server.New.
func NewServer(opts ServerOptions) *Server { return server.New(opts) }
