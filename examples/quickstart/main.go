// Command quickstart demonstrates FairSQG end to end on a hand-built
// graph: it declares a template in the textual DSL, asks for equal
// coverage of two gender groups, and prints the ε-Pareto set of suggested
// queries with their answers.
package main

import (
	"fmt"
	"log"

	"fairsqg"
)

func main() {
	// A ten-person professional network: directors, recommenders, orgs.
	g := fairsqg.NewGraph()
	type person struct {
		name, title, gender string
		exp                 int64
	}
	people := []person{
		{"ann", "Director", "female", 15},
		{"bob", "Director", "male", 18},
		{"cyn", "Director", "female", 9},
		{"dan", "Director", "male", 11},
		{"eve", "Engineer", "female", 12},
		{"fred", "Engineer", "male", 6},
		{"gail", "Manager", "female", 20},
		{"hank", "Analyst", "male", 3},
	}
	ids := make(map[string]fairsqg.NodeID)
	for _, p := range people {
		ids[p.name] = g.AddNode("Person", map[string]fairsqg.Value{
			"name":       fairsqg.Str(p.name),
			"title":      fairsqg.Str(p.title),
			"gender":     fairsqg.Str(p.gender),
			"yearsOfExp": fairsqg.Int(p.exp),
		})
	}
	bigCo := g.AddNode("Org", map[string]fairsqg.Value{"employees": fairsqg.Int(2000)})
	smallCo := g.AddNode("Org", map[string]fairsqg.Value{"employees": fairsqg.Int(80)})
	edges := []struct {
		from, to fairsqg.NodeID
		label    string
	}{
		{ids["eve"], ids["ann"], "recommend"},
		{ids["eve"], ids["bob"], "recommend"},
		{ids["fred"], ids["cyn"], "recommend"},
		{ids["gail"], ids["dan"], "recommend"},
		{ids["gail"], ids["ann"], "recommend"},
		{ids["hank"], ids["bob"], "recommend"},
		{ids["eve"], bigCo, "worksAt"},
		{ids["gail"], bigCo, "worksAt"},
		{ids["fred"], smallCo, "worksAt"},
		{ids["hank"], smallCo, "worksAt"},
	}
	for _, e := range edges {
		if err := g.AddEdge(e.from, e.to, e.label); err != nil {
			log.Fatal(err)
		}
	}
	g.Freeze()

	// Directors recommended by an experienced colleague who works at an
	// organization of parameterized size; the recommendation edge itself
	// is optional (an edge variable).
	tpl, err := fairsqg.ParseTemplate(`
template talent
node u_o Person title = "Director"
node u1 Person yearsOfExp >= $exp
node org Org employees >= $size
edge u1 u_o recommend ?rec
edge u1 org worksAt
output u_o
`)
	if err != nil {
		log.Fatal(err)
	}
	if err := tpl.BindDomains(g, fairsqg.DomainOptions{}); err != nil {
		log.Fatal(err)
	}

	// Fairness constraint: cover at least one director of each gender,
	// ideally exactly one of each.
	set := fairsqg.EqualOpportunity(
		fairsqg.GroupsByAttribute(g, "Person", "gender"), 1)

	gen, err := fairsqg.NewGenerator(&fairsqg.Config{
		G: g, Template: tpl, Groups: set, Eps: 0.2,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := gen.Bidirectional()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("BiQGen suggested %d queries (verified %d of %d instances):\n\n",
		len(res.Set), res.Stats.Verified, tpl.InstanceSpaceSize())
	for i, v := range res.Set {
		fmt.Printf("q%d: %s\n", i+1, v.Q)
		fmt.Printf("    diversity=%.3f coverage=%.0f answers=%d\n",
			v.Point.Div, v.Point.Cov, len(v.Matches))
		for _, m := range v.Matches {
			fmt.Printf("    -> %s (%s)\n", g.Attr(m, "name"), g.Attr(m, "gender"))
		}
		fmt.Println()
	}
}
