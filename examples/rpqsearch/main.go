// Command rpqsearch demonstrates the regular-path-query extension (the
// paper's stated future-work query class): over a citation graph it
// generates RPQ instances — "papers reachable from recent papers via
// bounded citation/authorship paths" — whose answers balance topic
// coverage against diversity.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"fairsqg"
)

func main() {
	nodes := flag.Int("nodes", 8000, "synthetic citation-graph size")
	seed := flag.Int64("seed", 5, "generation seed")
	want := flag.Int("cover", 15, "required papers per topic group")
	flag.Parse()

	g, err := fairsqg.BuildDataset(fairsqg.DatasetCite, fairsqg.DatasetOptions{Nodes: *nodes, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("citation graph: %s\n\n", fairsqg.SummarizeGraph(g))

	// Papers reachable from recent well-cited papers by following either a
	// direct citation or a citation chain; the alternation branches and the
	// hop bound are generation parameters.
	expr, err := fairsqg.ParsePathExpr("cites|cites/cites")
	if err != nil {
		log.Fatal(err)
	}
	tpl, err := fairsqg.NewRPQTemplate("influence", "Paper", expr, []int{6, 4, 2, 1})
	if err != nil {
		log.Fatal(err)
	}
	tpl.AddVar("minYear", "year", fairsqg.OpGE)
	tpl.AddVar("minCites", "numberOfCitations", fairsqg.OpGE)
	if err := tpl.BindDomains(g, 6); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RPQ template: sources Paper, path %s, bounds %v, space %d instances\n\n",
		expr, tpl.Bounds, tpl.InstanceSpaceSize())

	// Cover the two largest topic groups.
	all := fairsqg.GroupsByAttribute(g, "Paper", "topic")
	sort.Slice(all, func(i, j int) bool { return all[i].Size() > all[j].Size() })
	set := fairsqg.EqualOpportunity(all[:2], *want)
	fmt.Printf("groups: %s (%d), %s (%d); c=%d each\n\n",
		set[0].Name, set[0].Size(), set[1].Name, set[1].Size(), *want)

	gen, err := fairsqg.NewRPQGenerator(&fairsqg.RPQConfig{
		G: g, Template: tpl, Groups: set, Eps: 0.1,
		DistanceAttrs: []string{"topic", "numberOfCitations"},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := gen.Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d RPQ suggestions in %v (verified %d, pruned %d):\n\n",
		len(res.Set), res.Elapsed.Round(1000000), res.VerifiedCount, res.Pruned)
	for i, v := range res.Set {
		counts := set.Count(v.Targets)
		fmt.Printf("q%d: %s\n", i+1, tpl.Describe(v.In))
		fmt.Printf("    %d papers (%d/%d per topic), diversity %.2f, coverage %.0f\n\n",
			len(v.Targets), counts[0], counts[1], v.Point.Div, v.Point.Cov)
	}
}
