// Command workloadgen demonstrates the paper's benchmarking use case
// (Section IV-C): generating a fixed-size workload of k subgraph queries
// with guaranteed diversity/coverage trade-offs from a stream of candidate
// instantiations, using OnlineQGen. The queries are emitted in the
// template DSL so downstream benchmark drivers can replay them.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"fairsqg"
)

func main() {
	nodes := flag.Int("nodes", 8000, "synthetic citation-graph size")
	seed := flag.Int64("seed", 11, "generation seed")
	k := flag.Int("k", 8, "workload size to maintain")
	window := flag.Int("w", 40, "sliding-window cache size")
	stream := flag.Int("stream", 400, "candidate instances to stream")
	flag.Parse()

	g, err := fairsqg.BuildDataset(fairsqg.DatasetCite, fairsqg.DatasetOptions{Nodes: *nodes, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("citation graph: %s\n\n", fairsqg.SummarizeGraph(g))

	tpl := fairsqg.PaperTemplate()
	if err := tpl.BindDomains(g, fairsqg.DomainOptions{MaxValues: 8}); err != nil {
		log.Fatal(err)
	}
	// Cover the two largest topic groups evenly.
	all := fairsqg.GroupsByAttribute(g, "Paper", "topic")
	sort.Slice(all, func(i, j int) bool { return all[i].Size() > all[j].Size() })
	set := fairsqg.EqualOpportunity(all[:2], 20)
	fmt.Printf("groups: %s (%d papers), %s (%d papers); c=20 each\n\n",
		set[0].Name, set[0].Size(), set[1].Name, set[1].Size())

	gen, err := fairsqg.NewGenerator(&fairsqg.Config{
		G: g, Template: tpl, Groups: set, Eps: 0.05,
		DistanceAttrs: []string{"topic", "numberOfCitations"},
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := gen.Online(
		fairsqg.NewRandomStream(tpl, *stream, *seed+1),
		fairsqg.OnlineOptions{K: *k, Window: *window},
	)
	if err != nil {
		log.Fatal(err)
	}
	var worst time.Duration
	for _, d := range res.Delays {
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("streamed %d instances in %v (worst per-instance delay %v)\n",
		res.Processed, time.Since(start).Round(time.Millisecond), worst.Round(time.Microsecond))
	fmt.Printf("final ε = %.4f, workload size %d/%d\n\n", res.Eps, len(res.Set), *k)

	for i, v := range res.Set {
		fmt.Printf("-- workload query %d: diversity %.2f, coverage %.0f, answers %d\n",
			i+1, v.Point.Div, v.Point.Cov, len(v.Matches))
		fmt.Println(v.Q.Describe())
	}
}
