// Command moviesearch reproduces the paper's Exp-4 case study (Fig. 12):
// movie search over a knowledge graph with parameterized rating, awards
// and cast/direction edges, under an equal coverage requirement over two
// genre groups. It prints the suggested queries and shows how the genre
// balance of the answers improves over the initial query.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"fairsqg"
)

func main() {
	nodes := flag.Int("nodes", 10000, "synthetic knowledge-graph size")
	seed := flag.Int64("seed", 3, "generation seed")
	want := flag.Int("cover", 25, "required movies per genre group")
	flag.Parse()

	g, err := fairsqg.BuildDataset(fairsqg.DatasetDBP, fairsqg.DatasetOptions{Nodes: *nodes, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("movie knowledge graph: %s\n\n", fairsqg.SummarizeGraph(g))

	tpl := fairsqg.MovieTemplate()
	if err := tpl.BindDomains(g, fairsqg.DomainOptions{MaxValues: 6}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("template:")
	fmt.Println(fairsqg.FormatTemplate(tpl))

	set := fairsqg.EqualOpportunity(
		fairsqg.GroupsByValues(g, "Movie", "genre", "Romance", "Horror"), *want)

	// Initial query: the most relaxed instance (high-rating filter off).
	root := fairsqg.RootInstance(tpl)
	ans := fairsqg.Answer(g, root)
	cr, ch := genreCounts(g, ans)
	fmt.Printf("initial query: %d US movies (%d romance / %d horror)\n\n", len(ans), cr, ch)

	gen, err := fairsqg.NewGenerator(&fairsqg.Config{
		G: g, Template: tpl, Groups: set, Eps: 0.05,
		DistanceAttrs: []string{"genre", "rating", "year"},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := gen.Bidirectional()
	if err != nil {
		log.Fatal(err)
	}
	picked := append([]*fairsqg.Verified(nil), res.Set...)
	sort.Slice(picked, func(i, j int) bool { return picked[i].Point.Cov > picked[j].Point.Cov })
	fmt.Printf("BiQGen suggested %d queries; best-balanced first:\n\n", len(picked))
	for i, v := range picked {
		r, h := genreCounts(g, v.Matches)
		fmt.Printf("q%d: %s\n", i+1, v.Q)
		fmt.Printf("    %d movies (%d romance / %d horror), diversity %.2f, coverage %.0f/%d\n\n",
			len(v.Matches), r, h, v.Point.Div, v.Point.Cov, set.TotalWant())
	}
}

func genreCounts(g *fairsqg.Graph, movies []fairsqg.NodeID) (romance, horror int) {
	for _, m := range movies {
		switch g.Attr(m, "genre").Text() {
		case "Romance":
			romance++
		case "Horror":
			horror++
		}
	}
	return romance, horror
}
