// Command talentsearch reproduces the paper's motivating scenario
// (Example 1): talent search over a professional network whose initial
// query returns a gender-skewed answer. It generates queries under an
// equal-opportunity constraint and contrasts RfQGen (diversity-first
// convergence) with BiQGen (coverage-balanced convergence).
package main

import (
	"flag"
	"fmt"
	"log"

	"fairsqg"
)

func main() {
	nodes := flag.Int("nodes", 12000, "synthetic network size")
	seed := flag.Int64("seed", 7, "generation seed")
	want := flag.Int("cover", 40, "required candidates per gender group")
	eps := flag.Float64("eps", 0.05, "ε-dominance tolerance")
	flag.Parse()

	g, err := fairsqg.BuildDataset(fairsqg.DatasetLKI, fairsqg.DatasetOptions{Nodes: *nodes, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	s := fairsqg.SummarizeGraph(g)
	fmt.Printf("professional network: %s\n\n", s)

	// The Fig. 1 template: directors recommended by experienced users, one
	// of whom works at a large organization.
	tpl := fairsqg.TalentTemplate()
	if err := tpl.BindDomains(g, fairsqg.DomainOptions{MaxValues: 6}); err != nil {
		log.Fatal(err)
	}

	set := fairsqg.EqualOpportunity(
		fairsqg.GroupsByAttribute(g, "Person", "gender"), *want)

	// The skew the paper motivates: the initial (most relaxed) query
	// returns many more male than female candidates.
	root := fairsqg.RootInstance(tpl)
	ans := fairsqg.Answer(g, root)
	male, female := 0, 0
	for _, v := range ans {
		switch g.Attr(v, "gender").Text() {
		case "male":
			male++
		case "female":
			female++
		}
	}
	fmt.Printf("initial query q1: %d candidates (%d male / %d female) — skewed\n\n", len(ans), male, female)

	cfg := &fairsqg.Config{
		G: g, Template: tpl, Groups: set, Eps: *eps,
		// Diversify candidates by their major and experience; scoring all
		// attributes (including names) would be slower and less meaningful.
		DistanceAttrs: []string{"major", "yearsOfExp"},
		MaxPairs:      20000,
	}
	for _, alg := range []struct {
		name string
		run  func(*fairsqg.Generator) (*fairsqg.Result, error)
	}{
		{"RfQGen (refine-first)", (*fairsqg.Generator).Refine},
		{"BiQGen (bidirectional)", (*fairsqg.Generator).Bidirectional},
	} {
		gen, err := fairsqg.NewGenerator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := alg.run(gen)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d suggestions in %v (verified %d instances)\n",
			alg.name, len(res.Set), res.Elapsed.Round(1000000), res.Stats.Verified)
		for i, v := range res.Set {
			m, f := 0, 0
			for _, c := range v.Matches {
				if g.Attr(c, "gender").Text() == "male" {
					m++
				} else {
					f++
				}
			}
			fmt.Printf("  q%d %s\n     %d candidates (%d male / %d female), diversity %.2f, coverage %.0f/%d\n",
				i+1, v.Q, len(v.Matches), m, f, v.Point.Div, v.Point.Cov, set.TotalWant())
		}
		fmt.Println()
	}
}
