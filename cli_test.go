package fairsqg

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles one of the repo's commands into a temp dir.
func buildCLI(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func TestGraphgenCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildCLI(t, "graphgen")
	out := filepath.Join(t.TempDir(), "g.tsv")
	cmd := exec.Command(bin, "-dataset", "lki", "-nodes", "500", "-seed", "3", "-out", out, "-stats")
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("graphgen: %v\n%s", err, msg)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := ReadGraphTSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() < 400 || g.NumEdges() == 0 {
		t.Errorf("generated graph too small: %s", SummarizeGraph(g))
	}
	// Unknown format fails loudly.
	bad := exec.Command(bin, "-format", "xml")
	if err := bad.Run(); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestFairsqgCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildCLI(t, "fairsqg")
	save := filepath.Join(t.TempDir(), "workload.json")
	cmd := exec.Command(bin,
		"-dataset", "lki", "-nodes", "1500", "-seed", "2",
		"-canon", "talent", "-max-domain", "3",
		"-cover", "3", "-alg", "bi", "-eps", "0.2",
		"-dist-attrs", "major,yearsOfExp", "-save", save)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("fairsqg: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "q1:") {
		t.Errorf("no suggestions in output:\n%s", out)
	}
	// The saved workload loads back.
	f, err := os.Open(save)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, instances, err := LoadWorkload(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) == 0 {
		t.Error("saved workload empty")
	}
	// Unknown algorithm fails.
	bad := exec.Command(bin, "-dataset", "lki", "-nodes", "500", "-alg", "zz")
	if err := bad.Run(); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestExperimentsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildCLI(t, "experiments")
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments -list: %v\n%s", err, out)
	}
	for _, id := range []string{"table2", "fig9a", "fig11b", "fig12"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("-list missing %s", id)
		}
	}
	// table2 at quick scale runs fast and prints rows; CSV mode too.
	run := exec.Command(bin, "-exp", "table2", "-scale", "quick", "-csv")
	msg, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("experiments table2: %v\n%s", err, msg)
	}
	if !strings.Contains(string(msg), "experiment,series,x,value,extra") {
		t.Errorf("CSV header missing:\n%s", msg)
	}
	// Unknown experiment exits non-zero.
	if err := exec.Command(bin, "-exp", "zzz").Run(); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Unknown scale exits non-zero.
	if err := exec.Command(bin, "-scale", "zzz").Run(); err == nil {
		t.Error("unknown scale accepted")
	}
}
