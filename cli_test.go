package fairsqg

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles one of the repo's commands into a temp dir.
func buildCLI(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func TestGraphgenCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildCLI(t, "graphgen")
	out := filepath.Join(t.TempDir(), "g.tsv")
	cmd := exec.Command(bin, "-dataset", "lki", "-nodes", "500", "-seed", "3", "-out", out, "-stats")
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("graphgen: %v\n%s", err, msg)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := ReadGraphTSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() < 400 || g.NumEdges() == 0 {
		t.Errorf("generated graph too small: %s", SummarizeGraph(g))
	}
	// Unknown format fails loudly.
	bad := exec.Command(bin, "-format", "xml")
	if err := bad.Run(); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestFairsqgCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildCLI(t, "fairsqg")
	save := filepath.Join(t.TempDir(), "workload.json")
	cmd := exec.Command(bin,
		"-dataset", "lki", "-nodes", "1500", "-seed", "2",
		"-canon", "talent", "-max-domain", "3",
		"-cover", "3", "-alg", "bi", "-eps", "0.2",
		"-dist-attrs", "major,yearsOfExp", "-save", save)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("fairsqg: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "q1:") {
		t.Errorf("no suggestions in output:\n%s", out)
	}
	// The saved workload loads back.
	f, err := os.Open(save)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, instances, err := LoadWorkload(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) == 0 {
		t.Error("saved workload empty")
	}
	// Unknown algorithm fails.
	bad := exec.Command(bin, "-dataset", "lki", "-nodes", "500", "-alg", "zz")
	if err := bad.Run(); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestExperimentsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildCLI(t, "experiments")
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments -list: %v\n%s", err, out)
	}
	for _, id := range []string{"table2", "fig9a", "fig11b", "fig12"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("-list missing %s", id)
		}
	}
	// table2 at quick scale runs fast and prints rows; CSV mode too.
	run := exec.Command(bin, "-exp", "table2", "-scale", "quick", "-csv")
	msg, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("experiments table2: %v\n%s", err, msg)
	}
	if !strings.Contains(string(msg), "experiment,series,x,value,extra") {
		t.Errorf("CSV header missing:\n%s", msg)
	}
	// Unknown experiment exits non-zero.
	if err := exec.Command(bin, "-exp", "zzz").Run(); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Unknown scale exits non-zero.
	if err := exec.Command(bin, "-scale", "zzz").Run(); err == nil {
		t.Error("unknown scale accepted")
	}
}

// wantExitError runs the command and asserts it exits non-zero with a
// diagnostic on stderr.
func wantExitError(t *testing.T, why string, bin string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Errorf("%s: exited 0, want failure\n%s", why, out)
		return
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("%s: %v (not an exit error)", why, err)
	}
	if exitErr.ExitCode() == 0 {
		t.Errorf("%s: exit code 0, want non-zero", why)
	}
	if len(strings.TrimSpace(string(out))) == 0 {
		t.Errorf("%s: failed silently, want a message", why)
	}
}

// TestCLIErrorExitCodes checks that bad flags and files make every
// command fail loudly with a non-zero exit code.
func TestCLIErrorExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	graphgen := buildCLI(t, "graphgen")
	wantExitError(t, "graphgen negative -nodes", graphgen, "-nodes", "-5")
	wantExitError(t, "graphgen unknown dataset", graphgen, "-dataset", "zzz")
	wantExitError(t, "graphgen stray args", graphgen, "stray")
	wantExitError(t, "graphgen unwritable -out", graphgen, "-nodes", "300", "-out", filepath.Join(t.TempDir(), "no", "such", "dir", "g.tsv"))

	fairsqg := buildCLI(t, "fairsqg")
	wantExitError(t, "fairsqg bad -max-domain", fairsqg, "-max-domain", "0")
	wantExitError(t, "fairsqg negative -cover", fairsqg, "-cover", "-1")
	wantExitError(t, "fairsqg missing graph file", fairsqg, "-graph", filepath.Join(t.TempDir(), "nope.tsv"))
	wantExitError(t, "fairsqg missing template file", fairsqg, "-dataset", "lki", "-nodes", "500", "-template", filepath.Join(t.TempDir(), "nope.tpl"))
	wantExitError(t, "fairsqg unknown -canon", fairsqg, "-dataset", "lki", "-nodes", "500", "-canon", "zzz")
	wantExitError(t, "fairsqg bad online knobs", fairsqg, "-alg", "online", "-k", "0")
	wantExitError(t, "fairsqg bad -eps", fairsqg, "-dataset", "lki", "-nodes", "500", "-eps", "-0.5")
	wantExitError(t, "fairsqg unknown -order", fairsqg, "-dataset", "lki", "-nodes", "500", "-order", "zzz")

	badBatch := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badBatch, []byte(`[{"op":"zap"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	wantExitError(t, "fairsqg missing -mutations file", fairsqg, "-dataset", "lki", "-nodes", "500",
		"-mutations", filepath.Join(t.TempDir(), "nope.json"))
	wantExitError(t, "fairsqg unknown mutation op", fairsqg, "-dataset", "lki", "-nodes", "500",
		"-mutations", badBatch)

	experiments := buildCLI(t, "experiments")
	wantExitError(t, "experiments stray args", experiments, "stray")
}

// TestFairsqgMutationsFlag applies an offline mutation batch before
// generation and checks both directions of the -save-snapshot
// interaction: a tombstone-free mutated graph converts, a batch with
// node removals is rejected with the checkpoint hint.
func TestFairsqgMutationsFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	fairsqg := buildCLI(t, "fairsqg")

	removing := filepath.Join(dir, "removing.json")
	if err := os.WriteFile(removing,
		[]byte(`[{"op":"removeNode","node":0},{"op":"setAttr","node":5,"attr":"yearsOfExp","value":"33"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(fairsqg, "-dataset", "lki", "-nodes", "500", "-seed", "3",
		"-mutations", removing, "-canon", "talent", "-max-domain", "3", "-cover", "3",
		"-alg", "bi", "-eps", "0.2").CombinedOutput()
	if err != nil {
		t.Fatalf("fairsqg -mutations: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "mutations: 2 ops applied (version 2)") {
		t.Errorf("missing mutation summary line:\n%s", out)
	}

	setOnly := filepath.Join(dir, "set.json")
	if err := os.WriteFile(setOnly,
		[]byte(`[{"op":"setAttr","node":5,"attr":"yearsOfExp","value":"33"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, "mut.fsnap")
	if out, err := exec.Command(fairsqg, "-dataset", "lki", "-nodes", "500", "-seed", "3",
		"-mutations", setOnly, "-save-snapshot", snap).CombinedOutput(); err != nil {
		t.Fatalf("fairsqg -mutations -save-snapshot: %v\n%s", err, out)
	}
	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ReadGraphSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatalf("reading mutated snapshot: %v", err)
	}
	if got := g.Attr(5, "yearsOfExp"); !got.Equal(Num(33)) {
		t.Errorf("mutated snapshot lost the write: yearsOfExp = %v", got)
	}

	// Tombstoned graphs cannot snapshot; the CLI surfaces the codec's
	// checkpoint hint instead of writing a resurrected-node image.
	out, err = exec.Command(fairsqg, "-dataset", "lki", "-nodes", "500", "-seed", "3",
		"-mutations", removing, "-save-snapshot", filepath.Join(dir, "nope.fsnap")).CombinedOutput()
	if err == nil {
		t.Fatalf("tombstoned -save-snapshot succeeded:\n%s", out)
	}
	if !strings.Contains(string(out), "tombstoned") {
		t.Errorf("missing tombstone error, got:\n%s", out)
	}
}

// TestSnapshotCLIRoundTrip drives the offline-conversion path end to
// end: graphgen emits a binary snapshot, fairsqg converts a TSV graph
// with -save-snapshot, and both artifacts load back (including through
// fairsqg -graph x.fsnap, which must produce the same suggestions as the
// TSV source).
func TestSnapshotCLIRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()

	graphgen := buildCLI(t, "graphgen")
	genSnap := filepath.Join(dir, "gen.fsnap")
	if out, err := exec.Command(graphgen, "-dataset", "lki", "-nodes", "500", "-seed", "3",
		"-format", "snapshot", "-out", genSnap).CombinedOutput(); err != nil {
		t.Fatalf("graphgen -format snapshot: %v\n%s", err, out)
	}
	f, err := os.Open(genSnap)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ReadGraphSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatalf("reading graphgen snapshot: %v", err)
	}
	if g.NumNodes() < 400 || g.NumEdges() == 0 {
		t.Errorf("snapshot graph too small: %s", SummarizeGraph(g))
	}

	// fairsqg conversion + warm load: TSV -> snapshot, then generate from
	// both and compare the suggestion lines.
	fairsqg := buildCLI(t, "fairsqg")
	tsv := filepath.Join(dir, "g.tsv")
	if out, err := exec.Command(graphgen, "-dataset", "lki", "-nodes", "1500", "-seed", "2",
		"-out", tsv).CombinedOutput(); err != nil {
		t.Fatalf("graphgen tsv: %v\n%s", err, out)
	}
	snap := filepath.Join(dir, "g.fsnap")
	if out, err := exec.Command(fairsqg, "-graph", tsv, "-save-snapshot", snap).CombinedOutput(); err != nil {
		t.Fatalf("fairsqg -save-snapshot: %v\n%s", err, out)
	}
	genArgs := func(graphFile string) []string {
		return []string{"-graph", graphFile, "-canon", "talent", "-max-domain", "3",
			"-cover", "3", "-alg", "bi", "-eps", "0.2"}
	}
	fromTSV, err := exec.Command(fairsqg, genArgs(tsv)...).Output()
	if err != nil {
		t.Fatalf("fairsqg from tsv: %v", err)
	}
	fromSnap, err := exec.Command(fairsqg, genArgs(snap)...).Output()
	if err != nil {
		t.Fatalf("fairsqg from snapshot: %v", err)
	}
	if string(fromTSV) != string(fromSnap) {
		t.Errorf("snapshot-loaded run differs from TSV run:\n--- tsv\n%s--- snapshot\n%s", fromTSV, fromSnap)
	}

	// Corrupt snapshots fail loudly on every loading path.
	bad := filepath.Join(dir, "bad.fsnap")
	if err := os.WriteFile(bad, []byte("FSQGSNAPgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantExitError(t, "fairsqg corrupt snapshot", fairsqg, "-graph", bad)
	wantExitError(t, "fairsqg unwritable -save-snapshot", fairsqg, "-dataset", "lki", "-nodes", "300",
		"-save-snapshot", filepath.Join(dir, "no", "such", "dir", "g.fsnap"))
}

// TestFairsqgdCLI checks the daemon's flag and preload error paths; the
// live-server path is covered by scripts/server_smoke.sh and the
// internal/server e2e tests.
func TestFairsqgdCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildCLI(t, "fairsqgd")
	wantExitError(t, "fairsqgd malformed -graph", bin, "-graph", "noequalsign")
	wantExitError(t, "fairsqgd missing graph file", bin, "-graph", "g="+filepath.Join(t.TempDir(), "nope.tsv"))
	badSnap := filepath.Join(t.TempDir(), "bad.fsnap")
	if err := os.WriteFile(badSnap, []byte("FSQGSNAPgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantExitError(t, "fairsqgd corrupt snapshot preload", bin, "-graph", "g="+badSnap)
	wantExitError(t, "fairsqgd stray args", bin, "stray")
	wantExitError(t, "fairsqgd bad -addr", bin, "-addr", "not-an-address")
	wantExitError(t, "fairsqgd unknown -order", bin, "-order", "zzz")

	// Cluster role validation: the flag combinations must be rejected
	// before any listener comes up.
	wantExitError(t, "fairsqgd unknown -role", bin, "-role", "supervisor")
	wantExitError(t, "fairsqgd coordinator without workers", bin, "-role", "coordinator")
	wantExitError(t, "fairsqgd cluster-workers without coordinator role", bin, "-cluster-workers", "localhost:9001")
	wantExitError(t, "fairsqgd coordinator with blank worker", bin, "-role", "coordinator", "-cluster-workers", "localhost:9001,,localhost:9002")
	wantExitError(t, "fairsqgd coordinator with duplicate workers", bin, "-role", "coordinator", "-cluster-workers", "localhost:9001,localhost:9001")
	wantExitError(t, "fairsqgd worker with missing graph file", bin, "-role", "worker", "-graph", "g="+filepath.Join(t.TempDir(), "nope.tsv"))
	wantExitError(t, "fairsqgd worker corrupt snapshot preload", bin, "-role", "worker", "-graph", "g="+badSnap)
}
