module fairsqg

go 1.22
