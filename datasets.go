package fairsqg

import (
	"fairsqg/internal/gen"
	"fairsqg/internal/query"
)

// Dataset names for BuildDataset, mirroring the paper's evaluation graphs.
const (
	// DatasetDBP is the movie knowledge graph (DBpedia-shaped).
	DatasetDBP = gen.DBP
	// DatasetLKI is the professional network (LinkedIn-shaped).
	DatasetLKI = gen.LKI
	// DatasetCite is the citation graph (Microsoft-Academic-shaped).
	DatasetCite = gen.Cite
)

// DatasetOptions scales synthetic dataset generation.
type DatasetOptions = gen.Options

// TemplateParams controls synthetic template generation.
type TemplateParams = gen.TemplateParams

// BuildDataset generates one of the synthetic evaluation datasets (frozen).
// The real graphs the paper uses are not redistributable; these generators
// reproduce their schema shape at a configurable scale (see DESIGN.md).
func BuildDataset(name string, opts DatasetOptions) (*Graph, error) {
	return gen.Build(name, opts)
}

// GenerateTemplate builds a random tree-shaped template over a dataset's
// schema with the requested |Q|, |X_L| and |X_E|. Bind its value ladders
// with Template.BindDomains before use.
func GenerateTemplate(dataset string, p TemplateParams) (*Template, error) {
	s, err := gen.SchemaFor(dataset)
	if err != nil {
		return nil, err
	}
	return gen.GenerateTemplate(s, p)
}

// GenerateFeasibleTemplate retries template generation across seeds until
// probe accepts one (typically: the root instance is feasible), binding
// value ladders against g with the given domain cap.
func GenerateFeasibleTemplate(g *Graph, dataset string, p TemplateParams, maxDomain, maxTries int,
	probe func(*Template) bool) (*Template, error) {
	s, err := gen.SchemaFor(dataset)
	if err != nil {
		return nil, err
	}
	return gen.GenerateFeasibleTemplate(g, s, p, maxDomain, maxTries, probe)
}

// TalentTemplate returns the paper's running talent-search template
// (Fig. 1) for the LKI dataset.
func TalentTemplate() *Template { return gen.TalentTemplate() }

// MovieTemplate returns the Fig. 12 case-study template for DBP.
func MovieTemplate() *Template { return gen.MovieTemplate() }

// PaperTemplate returns the academic-search template for Cite.
func PaperTemplate() *Template { return gen.PaperTemplate() }

// RootInstance materializes the template's most relaxed instance.
func RootInstance(t *Template) *Instance {
	return query.MustInstance(t, query.Root(t))
}

// MakeInstance materializes an instance from explicit binding levels.
func MakeInstance(t *Template, in Instantiation) (*Instance, error) {
	return query.NewInstance(t, in)
}
