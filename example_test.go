package fairsqg_test

import (
	"fmt"
	"log"

	"fairsqg"
)

// buildExampleGraph assembles a deterministic six-person network used by
// the runnable documentation examples.
func buildExampleGraph() *fairsqg.Graph {
	g := fairsqg.NewGraph()
	people := []struct {
		title, gender string
		exp           int64
	}{
		{"Director", "female", 15},
		{"Director", "male", 11},
		{"Engineer", "female", 12},
		{"Engineer", "male", 6},
		{"Manager", "female", 20},
		{"Analyst", "male", 3},
	}
	for _, p := range people {
		g.AddNode("Person", map[string]fairsqg.Value{
			"title":      fairsqg.Str(p.title),
			"gender":     fairsqg.Str(p.gender),
			"yearsOfExp": fairsqg.Int(p.exp),
		})
	}
	edges := [][2]int{{2, 0}, {2, 1}, {3, 1}, {4, 0}, {5, 1}}
	for _, e := range edges {
		if err := g.AddEdge(fairsqg.NodeID(e[0]), fairsqg.NodeID(e[1]), "recommend"); err != nil {
			log.Fatal(err)
		}
	}
	g.Freeze()
	return g
}

// ExampleParseTemplate shows the template DSL round trip.
func ExampleParseTemplate() {
	tpl, err := fairsqg.ParseTemplate(`
template demo
node u_o Person title = "Director"
node u1 Person yearsOfExp >= $exp
edge u1 u_o recommend ?rec
ladder $exp 5 10 15
output u_o
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("template %s: %d nodes, %d range vars, %d edge vars, %d instances\n",
		tpl.Name, len(tpl.Nodes), tpl.NumRangeVars(), tpl.NumEdgeVars(), tpl.InstanceSpaceSize())
	// Output:
	// template demo: 2 nodes, 1 range vars, 1 edge vars, 8 instances
}

// ExampleGenerator demonstrates end-to-end query generation with an
// equal-opportunity constraint over gender groups.
func ExampleGenerator() {
	g := buildExampleGraph()
	tpl, err := fairsqg.ParseTemplate(`
template talent
node u_o Person title = "Director"
node u1 Person yearsOfExp >= $exp
edge u1 u_o recommend ?rec
ladder $exp 6 12 20
output u_o
`)
	if err != nil {
		log.Fatal(err)
	}
	set := fairsqg.EqualOpportunity(
		fairsqg.GroupsByAttribute(g, "Person", "gender"), 1)

	gen, err := fairsqg.NewGenerator(&fairsqg.Config{
		G: g, Template: tpl, Groups: set, Eps: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := gen.Bidirectional()
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range res.Set {
		fmt.Printf("%s -> %d answers, coverage %.0f\n", v.Q, len(v.Matches), v.Point.Cov)
	}
	// Output:
	// talent{exp=_, rec=0} -> 2 answers, coverage 2
}

// ExampleAnswer evaluates a single instance directly.
func ExampleAnswer() {
	g := buildExampleGraph()
	tpl, err := fairsqg.ParseTemplate(`
template q
node u_o Person title = "Director"
node u1 Person yearsOfExp >= $exp
edge u1 u_o recommend
ladder $exp 6 12 20
output u_o
`)
	if err != nil {
		log.Fatal(err)
	}
	// Bind $exp to ladder level 1 (>= 12): only person 2 (exp 12) and 4
	// (exp 20) recommend, reaching both directors.
	inst, err := fairsqg.MakeInstance(tpl, fairsqg.Instantiation{1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fairsqg.Answer(g, inst))
	// Output:
	// [0 1]
}
