package fairsqg

import (
	"testing"

	"fairsqg/internal/bench"
	"fairsqg/internal/gen"
)

// benchHarness runs the experiment suite at a reduced scale so the full
// benchmark pass completes on one machine; use cmd/experiments -scale full
// for paper-scale runs. Dataset construction is excluded from timings by
// prewarming the harness cache.
func benchHarness(b *testing.B) *bench.Harness {
	b.Helper()
	h := bench.New(bench.Options{
		Nodes:     map[string]int{gen.DBP: 4000, gen.LKI: 5000, gen.Cite: 4000},
		Seed:      1,
		TotalC:    30,
		MaxDomain: 5,
		MaxPairs:  4000,
		StreamLen: 96,
	})
	for _, ds := range []string{gen.DBP, gen.LKI, gen.Cite} {
		if _, err := h.Dataset(ds); err != nil {
			b.Fatal(err)
		}
	}
	return h
}

func benchExperiment(b *testing.B, id string) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := h.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkTable2DatasetOverview regenerates Table II (dataset overview).
func BenchmarkTable2DatasetOverview(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig9aOverallEffectiveness regenerates Fig. 9(a): I_ε of Kungs,
// EnumQGen, RfQGen and BiQGen over the three datasets.
func BenchmarkFig9aOverallEffectiveness(b *testing.B) { benchExperiment(b, "fig9a") }

// BenchmarkFig9bVaryEpsilon regenerates Fig. 9(b): I_ε vs ε on LKI.
func BenchmarkFig9bVaryEpsilon(b *testing.B) { benchExperiment(b, "fig9b") }

// BenchmarkFig9cVaryRangeVars regenerates Fig. 9(c): I_ε vs |X_L| on DBP.
func BenchmarkFig9cVaryRangeVars(b *testing.B) { benchExperiment(b, "fig9c") }

// BenchmarkFig9dVaryEdgeVars regenerates Fig. 9(d): I_ε vs |X_E| on LKI.
func BenchmarkFig9dVaryEdgeVars(b *testing.B) { benchExperiment(b, "fig9d") }

// BenchmarkFig9eAnytimeQuality regenerates Fig. 9(e): anytime I_R under
// user preferences λ_R ∈ {0.1, 0.9}.
func BenchmarkFig9eAnytimeQuality(b *testing.B) { benchExperiment(b, "fig9e") }

// BenchmarkFig9fVaryCoverage regenerates Fig. 9(f): I_R vs C on DBP.
func BenchmarkFig9fVaryCoverage(b *testing.B) { benchExperiment(b, "fig9f") }

// BenchmarkFig9ghVaryGroups regenerates Fig. 9(g)/(h): I_R and I_ε vs |P|.
func BenchmarkFig9ghVaryGroups(b *testing.B) { benchExperiment(b, "fig9gh") }

// BenchmarkCBMComparison regenerates the Exp-1 CBM comparison.
func BenchmarkCBMComparison(b *testing.B) { benchExperiment(b, "cbm") }

// BenchmarkFig10aEfficiency regenerates Fig. 10(a): runtime per dataset.
func BenchmarkFig10aEfficiency(b *testing.B) { benchExperiment(b, "fig10a") }

// BenchmarkFig10bVaryEpsilon regenerates Fig. 10(b): runtime vs ε on LKI.
func BenchmarkFig10bVaryEpsilon(b *testing.B) { benchExperiment(b, "fig10b") }

// BenchmarkFig10cVaryRangeVars regenerates Fig. 10(c): runtime vs |X_L|.
func BenchmarkFig10cVaryRangeVars(b *testing.B) { benchExperiment(b, "fig10c") }

// BenchmarkFig10dVaryEdgeVars regenerates Fig. 10(d): runtime vs |X_E|.
func BenchmarkFig10dVaryEdgeVars(b *testing.B) { benchExperiment(b, "fig10d") }

// BenchmarkFig11aOnlineDelay regenerates Fig. 11(a): OnlineQGen batch
// delay vs k, batch size and window size.
func BenchmarkFig11aOnlineDelay(b *testing.B) { benchExperiment(b, "fig11a") }

// BenchmarkFig11bOnlineEffectiveness regenerates Fig. 11(b): OnlineQGen
// anytime I_ε.
func BenchmarkFig11bOnlineEffectiveness(b *testing.B) { benchExperiment(b, "fig11b") }

// BenchmarkFig12CaseStudy regenerates the Exp-4 movie-search case study.
func BenchmarkFig12CaseStudy(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkPruningAblation quantifies the verification savings of RfQGen
// and BiQGen relative to EnumQGen (the Exp-1/2 pruning claims).
func BenchmarkPruningAblation(b *testing.B) { benchExperiment(b, "pruning") }

// BenchmarkDesignAblations benchmarks template refinement, incremental
// verification and sandwich pruning on/off.
func BenchmarkDesignAblations(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkRPQGeneration benchmarks the regular-path-query extension (the
// paper's future-work query class): refinement-based ε-Pareto generation
// over a parameterized RPQ on the citation dataset.
func BenchmarkRPQGeneration(b *testing.B) {
	g, err := BuildDataset(DatasetCite, DatasetOptions{Nodes: 4000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	expr, err := ParsePathExpr("cites|cites/cites")
	if err != nil {
		b.Fatal(err)
	}
	tpl, err := NewRPQTemplate("influence", "Paper", expr, []int{4, 2, 1})
	if err != nil {
		b.Fatal(err)
	}
	tpl.AddVar("minYear", "year", OpGE)
	if err := tpl.BindDomains(g, 5); err != nil {
		b.Fatal(err)
	}
	set := EqualOpportunity(GroupsByValues(g, "Paper", "topic", "MachineLearning", "Databases"), 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen, err := NewRPQGenerator(&RPQConfig{
			G: g, Template: tpl, Groups: set, Eps: 0.1,
			DistanceAttrs: []string{"topic", "numberOfCitations"},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gen.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelGeneration benchmarks ParQGen against the sequential
// RfQGen on the LKI workload.
func BenchmarkParallelGeneration(b *testing.B) {
	g, err := BuildDataset(DatasetLKI, DatasetOptions{Nodes: 5000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	tpl := TalentTemplate()
	if err := tpl.BindDomains(g, DomainOptions{MaxValues: 5}); err != nil {
		b.Fatal(err)
	}
	set := EqualOpportunity(GroupsByAttribute(g, "Person", "gender"), 10)
	cfg := &Config{G: g, Template: tpl, Groups: set, Eps: 0.05,
		DistanceAttrs: []string{"major", "yearsOfExp"}, MaxPairs: 4000}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gen, err := NewGenerator(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := gen.Refine(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gen, err := NewGenerator(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := gen.Parallel(4); err != nil {
				b.Fatal(err)
			}
		}
	})
}
